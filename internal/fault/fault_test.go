package fault

import (
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sampleTrace builds n uniquely-tagged data packets with mildly
// irregular, occasionally tied timestamps — ties exercise the (at, rank)
// ordering contract between Apply and the Injector.
func sampleTrace(name string, n int, seed uint64) *trace.Trace {
	tr := trace.New(name, n)
	at := sim.Time(sim.Second)
	x := seed*2862933555777941757 + 3037000493
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if i > 0 {
			at += sim.Duration(x % 400) // 0..399 ns; zeros create ties
		}
		pk := &packet.Packet{
			Tag:      packet.Tag{Replayer: 1, Stream: uint16(i % 4), Seq: uint64(i)},
			Kind:     packet.KindData,
			FrameLen: 1400,
			Flow: packet.FiveTuple{
				Src: packet.IPForNode(1), Dst: packet.IPForNode(2),
				SrcPort: 7000, DstPort: 7001, Proto: packet.ProtoUDP,
			},
		}
		tr.Append(pk, at)
	}
	return tr
}

// testPlans is the shared plan matrix: every fault alone, plus
// combinations, plus the identity.
func testPlans() []Plan {
	return []Plan{
		{Seed: 1},
		{Seed: 2, Drop: 0.05},
		{Seed: 3, Dup: 0.04, DupDelay: 150},
		{Seed: 4, Corrupt: 0.06},
		{Seed: 5, BurstRate: 0.004, BurstLen: 5},
		{Seed: 6, Reorder: 0.05, ReorderDelay: 900},
		{Seed: 7, SkewPPM: 80},
		{Seed: 8, Jitter: 250},
		{Seed: 9, Drop: 0.03, Dup: 0.02, Corrupt: 0.02, Reorder: 0.03, Jitter: 120, SkewPPM: 25},
		{Seed: 10, Drop: 0.2, BurstRate: 0.01, Reorder: 0.1, Dup: 0.1},
	}
}

func traceEqual(t *testing.T, got, want *trace.Trace) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("length mismatch: got %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Times[i] != want.Times[i] {
			t.Fatalf("time mismatch at %d: got %v, want %v", i, got.Times[i], want.Times[i])
		}
		g, w := got.Packets[i], want.Packets[i]
		if g.Tag != w.Tag || g.Kind != w.Kind || g.FrameLen != w.FrameLen {
			t.Fatalf("packet mismatch at %d: got %v, want %v", i, g, w)
		}
	}
}

func TestIdentityPlanIsNoOp(t *testing.T) {
	in := sampleTrace("id", 2000, 11)
	out := Plan{Seed: 42}.Apply(in)
	traceEqual(t, out, in)
	for i := range out.Packets {
		if out.Packets[i] != in.Packets[i] {
			t.Fatalf("identity plan cloned packet %d", i)
		}
	}
}

func TestApplyReplayDeterminism(t *testing.T) {
	in := sampleTrace("det", 3000, 12)
	for _, p := range testPlans() {
		a := p.Apply(in)
		b := p.Apply(in)
		traceEqual(t, a, b)
	}
}

func TestApplyOutputValid(t *testing.T) {
	in := sampleTrace("valid", 3000, 13)
	for _, p := range testPlans() {
		out := p.Apply(in)
		if err := out.Validate(); err != nil {
			t.Fatalf("%v: invalid output: %v", p, err)
		}
	}
	// Negative skew is legal at trace level; the monotone clamp keeps
	// the result a valid trace.
	out := Plan{Seed: 14, SkewPPM: -500, Jitter: 90}.Apply(in)
	if err := out.Validate(); err != nil {
		t.Fatalf("negative skew: invalid output: %v", err)
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	in := sampleTrace("immut", 1500, 15)
	wantTimes := append([]sim.Time(nil), in.Times...)
	wantTags := make([]packet.Tag, in.Len())
	for i, pk := range in.Packets {
		wantTags[i] = pk.Tag
	}
	Plan{Seed: 16, Drop: 0.1, Dup: 0.1, Corrupt: 0.2, Reorder: 0.1, Jitter: 300, SkewPPM: 50}.Apply(in)
	for i := range wantTimes {
		if in.Times[i] != wantTimes[i] {
			t.Fatalf("input time %d mutated", i)
		}
		if in.Packets[i].Tag != wantTags[i] {
			t.Fatalf("input packet %d mutated", i)
		}
	}
}

// survivors returns the set of original sequence numbers present in the
// perturbed trace.
func survivors(tr *trace.Trace) map[uint64]bool {
	out := make(map[uint64]bool, tr.Len())
	for _, pk := range tr.Packets {
		out[pk.Tag.Seq] = true
	}
	return out
}

// TestDropCouplingIsMonotone is the exactness behind "U is monotone in
// the drop rate": because decision uniforms do not depend on the rate,
// the drop set at a lower rate is a subset of the drop set at any higher
// rate — so survivor sets are nested the other way.
func TestDropCouplingIsMonotone(t *testing.T) {
	in := sampleTrace("drop", 4000, 17)
	rates := []float64{0.01, 0.03, 0.08, 0.2, 0.5}
	prev := survivors(Plan{Seed: 18, Drop: rates[0]}.Apply(in))
	if len(prev) >= in.Len() {
		t.Fatalf("rate %g dropped nothing", rates[0])
	}
	for _, r := range rates[1:] {
		cur := survivors(Plan{Seed: 18, Drop: r}.Apply(in))
		if len(cur) >= len(prev) {
			t.Fatalf("drop count not increasing: rate %g kept %d, previous kept %d", r, len(cur), len(prev))
		}
		for seq := range cur {
			if !prev[seq] {
				t.Fatalf("coupling violated: packet %d survives rate %g but not a lower rate", seq, r)
			}
		}
		prev = cur
	}
}

func TestClockFaultsPreserveSetAndOrder(t *testing.T) {
	in := sampleTrace("clock", 2500, 19)
	for _, p := range []Plan{
		{Seed: 20, SkewPPM: 120},
		{Seed: 21, Jitter: 400},
		{Seed: 22, SkewPPM: -80, Jitter: 250},
	} {
		out := p.Apply(in)
		if out.Len() != in.Len() {
			t.Fatalf("%v changed the packet set: %d -> %d", p, in.Len(), out.Len())
		}
		for i := range out.Packets {
			if out.Packets[i] != in.Packets[i] {
				t.Fatalf("%v reordered or replaced packet %d", p, i)
			}
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	}
}

func TestCorruptScramblesTagsOnly(t *testing.T) {
	in := sampleTrace("corrupt", 3000, 23)
	out := Plan{Seed: 24, Corrupt: 0.1}.Apply(in)
	if out.Len() != in.Len() {
		t.Fatalf("corruption changed the packet count: %d -> %d", in.Len(), out.Len())
	}
	changed := 0
	for i := range out.Packets {
		if out.Times[i] != in.Times[i] {
			t.Fatalf("corruption moved timestamp %d", i)
		}
		if out.Packets[i].Tag != in.Packets[i].Tag {
			changed++
			if out.Packets[i].Tag.Seq&(1<<63) == 0 {
				t.Fatalf("scrambled tag %d missing the corruption marker bit", i)
			}
			if out.Packets[i] == in.Packets[i] {
				t.Fatalf("corruption mutated the shared packet %d instead of cloning", i)
			}
		}
	}
	if changed < 200 || changed > 400 {
		t.Fatalf("corrupt=0.1 over 3000 packets scrambled %d tags, want ~300", changed)
	}
}

func TestBurstTruncationRemovesRuns(t *testing.T) {
	in := sampleTrace("burst", 4000, 25)
	out := Plan{Seed: 26, BurstRate: 0.005, BurstLen: 8}.Apply(in)
	if out.Len() >= in.Len() {
		t.Fatal("burst plan removed nothing")
	}
	// The removed set must match a direct replay of the burst process:
	// a trigger removes itself and the next BurstLen−1 packets, and
	// triggers inside a burst are swallowed by the countdown.
	kept := survivors(out)
	p := Plan{Seed: 26, BurstRate: 0.005, BurstLen: 8}.withDefaults()
	burstLeft := 0
	for i := 0; i < in.Len(); i++ {
		removed := false
		if burstLeft > 0 {
			burstLeft--
			removed = true
		} else if p.hit(fBurst, uint64(i), p.BurstRate) {
			burstLeft = p.BurstLen - 1
			removed = true
		}
		if removed == kept[uint64(i)] {
			t.Fatalf("packet %d: removed=%v but kept=%v", i, removed, kept[uint64(i)])
		}
	}
}

func TestPlanStringListsKnobs(t *testing.T) {
	s := Plan{Seed: 7, Drop: 0.1, Reorder: 0.2, Jitter: 50, Stall: StallPlan{Rate: 0.3}}.String()
	for _, want := range []string{"seed=7", "drop=0.1", "reorder=0.2", "jitter=50ns", "stall=0.3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("plan string %q missing %q", s, want)
		}
	}
	if got := (Plan{Seed: 3}).String(); got != "plan(seed=3)" {
		t.Fatalf("identity plan string = %q", got)
	}
}

func TestIsIdentity(t *testing.T) {
	if !(Plan{Seed: 99}).IsIdentity() {
		t.Fatal("seed-only plan should be identity")
	}
	if (Plan{Drop: 0.1}).IsIdentity() || (Plan{Jitter: 1}).IsIdentity() || (Plan{SkewPPM: -1}).IsIdentity() {
		t.Fatal("non-trivial plan reported as identity")
	}
}

// sliceSource serves a trace as a fault.Source.
type sliceSource struct {
	tr *trace.Trace
	i  int
}

func (s *sliceSource) Next() (*packet.Packet, sim.Time, error) {
	if s.i >= s.tr.Len() {
		return nil, 0, io.EOF
	}
	pk, at := s.tr.Packets[s.i], s.tr.Times[s.i]
	s.i++
	return pk, at, nil
}

// drain reads a source to exhaustion.
func drain(t *testing.T, src Source) *trace.Trace {
	t.Helper()
	out := trace.New("drained", 0)
	for {
		pk, at, err := src.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("source error: %v", err)
		}
		out.Append(pk, at)
	}
}

// TestStallSourceIsDeliveryInvariant: stalls and batching perturb when
// records are handed over, never which records — the wrapped source must
// deliver the identical sequence.
func TestStallSourceIsDeliveryInvariant(t *testing.T) {
	in := sampleTrace("stall", 1000, 27)
	for _, p := range []Plan{
		{Seed: 28, Stall: StallPlan{Rate: 0.2, Yields: 2}},
		{Seed: 29, Stall: StallPlan{Batch: 7}},
		{Seed: 30, Stall: StallPlan{Rate: 0.5, Yields: 3, Batch: 64}},
		{Seed: 31, Stall: StallPlan{Batch: 2048}}, // batch larger than the input
	} {
		out := drain(t, p.StallSource(&sliceSource{tr: in}))
		traceEqual(t, out, in)
		for i := range out.Packets {
			if out.Packets[i] != in.Packets[i] {
				t.Fatalf("%v: stall source replaced packet %d", p, i)
			}
		}
	}
}

func TestStallSourceServesTerminalErrorRepeatedly(t *testing.T) {
	in := sampleTrace("eof", 10, 32)
	src := Plan{Seed: 33, Stall: StallPlan{Batch: 4}}.StallSource(&sliceSource{tr: in})
	drain(t, src)
	for i := 0; i < 3; i++ {
		if _, _, err := src.Next(); err != io.EOF {
			t.Fatalf("read past end %d: err = %v, want io.EOF", i, err)
		}
	}
}

func TestStallHookIsCallableFromManyGoroutines(t *testing.T) {
	hook := Plan{Seed: 34, Stall: StallPlan{Rate: 0.5, Yields: 1}}.StallHook()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				hook("shard", id)
				hook("merge", 0)
			}
		}(g)
	}
	wg.Wait()
}
