package fault

import (
	"fmt"
	"math"

	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// PerturbEnv folds the plan into a testbed environment, splitting it
// across the two surfaces a full experiment exposes:
//
//   - the clock knobs (SkewPPM, Jitter) degrade the environment's time
//     sources — SkewPPM widens the per-node TSC calibration-error scale
//     and Jitter fattens the PTP sync residual — so replay arming and
//     burst timestamping feel the fault the way §5's clock discussion
//     describes;
//   - every delivery knob (drop, dup, corrupt, burst, reorder) is wired
//     as an Injector in front of the recorder via Env.WrapRecorder, so
//     the capture point sees the perturbed flow.
//
// The split means no fault applies twice: the injector spliced here
// carries SkewPPM = 0 and Jitter = 0. An existing WrapRecorder is
// preserved — the injector stacks in front of it.
func (p Plan) PerturbEnv(env testbed.Env) testbed.Env {
	p = p.withDefaults()
	if p.SkewPPM != 0 {
		env.TSCErrPPM += math.Abs(p.SkewPPM)
	}
	if p.Jitter > 0 {
		env.Sync = env.Sync.Jittered(sim.Uniform{Lo: 0, Hi: p.Jitter})
	}
	dp := p
	dp.SkewPPM, dp.Jitter = 0, 0
	if dp.IsIdentity() {
		return env
	}
	prev := env.WrapRecorder
	env.WrapRecorder = func(eng *sim.Engine, down nic.Endpoint) nic.Endpoint {
		if prev != nil {
			down = prev(eng, down)
		}
		inj, err := NewInjector(eng, dp, down)
		if err != nil {
			// Unreachable: eng/down are non-nil and dp has no skew.
			panic(fmt.Sprintf("fault: PerturbEnv: %v", err))
		}
		return inj
	}
	return env
}
