package fault

import (
	"testing"

	"repro/internal/sim"
)

func TestParsePlanIdentity(t *testing.T) {
	for _, spec := range []string{"", "clean", "identity", "none", "  Clean  "} {
		p, err := ParsePlan(spec)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", spec, err)
		}
		if !p.IsIdentity() {
			t.Fatalf("ParsePlan(%q) = %v, want identity", spec, p)
		}
	}
}

func TestParsePlanFields(t *testing.T) {
	p, err := ParsePlan("seed=9, drop=0.01, jitter=2e3, reorder=0.1, reorderdelay=5000, skew=-3")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 9 || p.Drop != 0.01 || p.Jitter != 2000*sim.Nanosecond ||
		p.Reorder != 0.1 || p.ReorderDelay != 5000 || p.SkewPPM != -3 {
		t.Fatalf("parsed %+v", p)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"drop",           // missing value
		"drop=oops",      // non-numeric
		"drop=1.5",       // rate out of range
		"jitter=-5",      // negative duration
		"warp=0.5",       // unknown key
		"drop=0.1,dup=2", // second field bad
	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Fatalf("ParsePlan(%q) accepted", spec)
		}
	}
}

// TestParsePlanReplayable: a parsed plan drives the same Apply output
// as the equivalent literal plan.
func TestParsePlanReplayable(t *testing.T) {
	parsed, err := ParsePlan("seed=4,drop=0.2")
	if err != nil {
		t.Fatal(err)
	}
	literal := Plan{Seed: 4, Drop: 0.2}
	if parsed != literal {
		t.Fatalf("parsed %+v != literal %+v", parsed, literal)
	}
}
