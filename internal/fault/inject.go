package fault

import (
	"fmt"
	"math"

	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Injector composes a Plan into the simulated event path: it implements
// nic.Endpoint, so it can be attached anywhere a wire terminates — a
// switch egress port, the recorder's ingress, a middlebox RX — and
// perturbs the frames flowing through before handing them to the
// downstream endpoint.
//
// Drops and burst truncations swallow frames; duplicates and reordered
// frames are re-posted on the engine at their delayed arrival instants;
// skew/jitter shift delivery timestamps forward. Decisions use the same
// stateless (seed, fault, index) streams as Plan.Apply, with the index
// counting arrivals at this injector — so feeding a trace's arrivals
// through an Injector produces exactly Plan.Apply of that trace
// (asserted bit-for-bit by TestInjectorMatchesApply).
//
// An Injector is not safe for concurrent use; like every simulated
// component it runs inside engine callbacks.
type Injector struct {
	eng  *sim.Engine
	act  *sim.Actor
	plan Plan
	down nic.Endpoint

	idx       uint64
	started   bool
	base      sim.Time
	prev      sim.Time
	burstLeft int

	stats InjectorStats
}

// InjectorStats counts what the injector did to the flow — the ground
// truth a metamorphic test compares the metric response against.
type InjectorStats struct {
	// Received counts frames that reached the injector.
	Received int64
	// Delivered counts frames handed downstream (duplicates included).
	Delivered int64
	// Dropped and Truncated count removed frames (individual drops vs
	// burst truncation).
	Dropped, Truncated int64
	// Corrupted, Duplicated and Reordered count applied faults.
	Corrupted, Duplicated, Reordered int64
}

// NewInjector wires a plan in front of down on eng. Plans with negative
// skew are rejected: the event path cannot deliver into the past
// (trace-level Apply supports them).
func NewInjector(eng *sim.Engine, plan Plan, down nic.Endpoint) (*Injector, error) {
	if eng == nil || down == nil {
		return nil, fmt.Errorf("fault: injector needs an engine and a downstream endpoint")
	}
	if plan.SkewPPM < 0 {
		return nil, fmt.Errorf("fault: the sim-path injector cannot apply negative skew (%g ppm); use Plan.Apply", plan.SkewPPM)
	}
	return &Injector{eng: eng, act: eng.NewActor(), plan: plan.withDefaults(), down: down, prev: sim.Time(math.MinInt64)}, nil
}

// SimEngine reports the engine this injector runs on (sim.Hosted).
func (j *Injector) SimEngine() *sim.Engine { return j.eng }

// Stats returns the running fault counts.
func (j *Injector) Stats() InjectorStats { return j.stats }

// Receive implements nic.Endpoint: apply the plan to one arriving frame.
func (j *Injector) Receive(pk *packet.Packet, at sim.Time) {
	p := &j.plan
	idx := j.idx
	j.idx++
	j.stats.Received++
	if !j.started {
		j.started = true
		j.base = at
	}
	adj := p.adjustTime(j.base, at, idx)
	if adj < j.prev {
		adj = j.prev
	}
	j.prev = adj

	if j.burstLeft > 0 {
		j.burstLeft--
		j.stats.Truncated++
		return
	}
	if p.hit(fBurst, idx, p.BurstRate) {
		j.burstLeft = p.BurstLen - 1
		j.stats.Truncated++
		return
	}
	if p.hit(fDrop, idx, p.Drop) {
		j.stats.Dropped++
		return
	}
	if p.hit(fCorrupt, idx, p.Corrupt) {
		pk = corruptTag(pk, p.bits(fCorruptVal, idx))
		j.stats.Corrupted++
	}
	mainAt := adj
	if p.hit(fReorder, idx, p.Reorder) {
		mainAt = adj + p.ReorderDelay
		j.stats.Reordered++
	}
	j.deliver(pk, mainAt)
	if p.hit(fDup, idx, p.Dup) {
		j.stats.Duplicated++
		j.deliver(pk, adj+p.DupDelay)
	}
}

// deliver forwards a frame at instant at. Everything goes through the
// engine — even undelayed frames — so that arrivals at one instant fire
// in creation order, matching Plan.Apply's (time, rank) sort exactly.
func (j *Injector) deliver(pk *packet.Packet, at sim.Time) {
	j.act.Post(at, func() {
		j.stats.Delivered++
		j.down.Receive(pk, at)
	})
}
