package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// ParsePlan builds a Plan from a compact textual spec — the form the
// campaign CLI uses to name noise conditions:
//
//	""                      the identity plan (also "clean"/"identity")
//	"drop=0.01"             1% packet drop
//	"drop=0.005,jitter=2e3" combined faults, comma-separated
//
// Recognized keys (values are floats; durations are simulated
// nanoseconds): seed, drop, dup, dupdelay, corrupt, burst, burstlen,
// reorder, reorderdelay, skew (ppm), jitter. Rates outside [0,1] and
// unknown keys are errors, so a typo in a campaign spec fails fast
// instead of silently running the wrong experiment.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	s := strings.TrimSpace(spec)
	switch strings.ToLower(s) {
	case "", "clean", "identity", "none":
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad plan field %q (want key=value)", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad value for %q: %w", key, err)
		}
		rate := func(dst *float64) error {
			if x < 0 || x > 1 {
				return fmt.Errorf("fault: %s=%g outside [0,1]", key, x)
			}
			*dst = x
			return nil
		}
		switch key {
		case "seed":
			p.Seed = uint64(x)
		case "drop":
			err = rate(&p.Drop)
		case "dup":
			err = rate(&p.Dup)
		case "dupdelay":
			p.DupDelay = sim.Duration(x)
		case "corrupt":
			err = rate(&p.Corrupt)
		case "burst":
			err = rate(&p.BurstRate)
		case "burstlen":
			p.BurstLen = int(x)
		case "reorder":
			err = rate(&p.Reorder)
		case "reorderdelay":
			p.ReorderDelay = sim.Duration(x)
		case "skew":
			p.SkewPPM = x
		case "jitter":
			if x < 0 {
				return Plan{}, fmt.Errorf("fault: jitter=%g must be >= 0", x)
			}
			p.Jitter = sim.Duration(x)
		default:
			return Plan{}, fmt.Errorf("fault: unknown plan key %q", key)
		}
		if err != nil {
			return Plan{}, err
		}
	}
	return p, nil
}
