package fault

import (
	"runtime"
	"sync"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Source mirrors stream.Source structurally (declared here to keep the
// dependency arrow pointing from tests into this package, never from
// the streaming engine into the fault layer): one trial's packets in
// arrival order, io.EOF at a clean end.
type Source interface {
	Next() (*packet.Packet, sim.Time, error)
}

// StallSource wraps a streaming source with the plan's delivery-level
// scheduling faults:
//
//   - per-record stalls (Stall.Rate × Stall.Yields scheduler yields)
//     perturb the goroutine interleaving of the shard/merge pipeline;
//   - batching (Stall.Batch) withholds records and releases them in
//     lumps, which makes this side's window watermarks arrive late and
//     drives the other side into the backpressure gate.
//
// Neither fault changes *what* is delivered — only when. The streaming
// engine's output must therefore be bit-identical with or without the
// wrapper; the stream test suite asserts exactly that under -race.
func (p Plan) StallSource(src Source) Source {
	p = p.withDefaults()
	return &stallSource{src: src, plan: p}
}

// stallEntry is one buffered record of a batching stall source.
type stallEntry struct {
	pk *packet.Packet
	at sim.Time
}

type stallSource struct {
	src  Source
	plan Plan
	idx  uint64

	buf  []stallEntry
	next int
	err  error // terminal error, served after the buffer drains
	done bool
}

// Next implements Source.
func (s *stallSource) Next() (*packet.Packet, sim.Time, error) {
	p := &s.plan
	idx := s.idx
	s.idx++
	if p.hit(fStall, idx, p.Stall.Rate) {
		for i := 0; i < p.Stall.Yields; i++ {
			runtime.Gosched()
		}
	}
	if p.Stall.Batch <= 0 {
		return s.src.Next()
	}
	// Batching: pull a whole lump from the underlying source before
	// releasing its first record.
	if s.next >= len(s.buf) {
		if s.done {
			return nil, 0, s.err
		}
		s.buf = s.buf[:0]
		s.next = 0
		for len(s.buf) < p.Stall.Batch {
			pk, at, err := s.src.Next()
			if err != nil {
				s.err = err
				s.done = true
				break
			}
			s.buf = append(s.buf, stallEntry{pk: pk, at: at})
		}
		if len(s.buf) == 0 {
			return nil, 0, s.err
		}
	}
	e := s.buf[s.next]
	s.next++
	return e.pk, e.at, nil
}

// StallHook builds a stream.Config.Stall callback: a shard-stall fault
// that yields the worker's goroutine at plan-selected points inside the
// shard and merge stages. Decisions are per-(stage, id) counters over
// the plan's stall stream, so a given pipeline position stalls at the
// same logical records on every run; the resulting summaries must be
// bit-identical to an unstalled run (asserted in the stream suite).
//
// The hook is called concurrently from every shard worker, hence the
// lock — contention is itself part of the fault.
func (p Plan) StallHook() func(stage string, id int) {
	p = p.withDefaults()
	var mu sync.Mutex
	counts := make(map[[2]int]uint64) // [stage-class, id] → calls
	class := func(stage string) int {
		if stage == "merge" {
			return 1
		}
		return 0
	}
	return func(stage string, id int) {
		key := [2]int{class(stage), id}
		mu.Lock()
		c := counts[key]
		counts[key] = c + 1
		mu.Unlock()
		// Fold the position into the index so different shards stall at
		// different records.
		if p.hit(fStall, c*64+uint64(key[0])*32+uint64(id), p.Stall.Rate) {
			for i := 0; i < p.Stall.Yields; i++ {
				runtime.Gosched()
			}
		}
	}
}
