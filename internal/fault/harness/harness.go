// Package harness is the metamorphic test harness riding on the fault
// layer: it builds clean baseline trials, perturbs them with seeded
// fault.Plans, scores perturbed-vs-baseline with the paper's §3 metrics
// and exposes the fault *axes* — one knob swept from 0 to 1 with every
// other knob held at zero — that the metamorphic suites and
// cmd/faultsweep share.
//
// The harness encodes the paper's causal map from perturbation to
// metric (the directional invariants tested in metrics, stream and
// experiments):
//
//	drop, burst      → U rises (monotonically in the rate), O stays 0
//	dup, corrupt     → U rises (corruption raises OnlyA and OnlyB)
//	reorder-by-delay → O rises, U stays 0
//	jitter, skew     → L and I rise, U and O stay 0
//	identity         → κ = 1 exactly
package harness

import (
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Baseline synthesizes one clean recorded trial: n uniquely-tagged data
// packets paced at ~284 ns (1400-byte frames at 40 Gbps, the paper's
// main operating point) with a small deterministic IAT wobble so the
// timeline is realistic but strictly increasing. The same (n, seed)
// always yields a byte-identical trace.
func Baseline(name string, n int, seed uint64) *trace.Trace {
	tr := trace.New(name, n)
	at := sim.Time(sim.Second)
	x := seed ^ 0x9E3779B97F4A7C15
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if i > 0 {
			at += 284 + sim.Duration(x%41) - 20 // 264..304 ns, never ≤ 0
		}
		tr.Append(&packet.Packet{
			Tag:      packet.Tag{Replayer: 1, Stream: uint16(i % 4), Seq: uint64(i)},
			Kind:     packet.KindData,
			FrameLen: 1400,
			Flow: packet.FiveTuple{
				Src: packet.IPForNode(10), Dst: packet.IPForNode(99),
				SrcPort: 7000, DstPort: 7001, Proto: packet.ProtoUDP,
			},
		}, at)
	}
	return tr
}

// Score compares the perturbed trial against its baseline with the
// default metric options and returns the full §3 result.
func Score(baseline, perturbed *trace.Trace) (*metrics.Result, error) {
	return metrics.Compare(baseline, perturbed, metrics.Options{})
}

// Axis is one fault dimension: a name and a mapping from an intensity
// x ∈ [0,1] to a single-knob Plan. Time- and frequency-valued knobs
// scale x onto a documented range so every axis sweeps 0→1.
type Axis struct {
	// Name identifies the axis (drop, dup, corrupt, burst, reorder,
	// jitter, skew).
	Name string
	// Desc is the one-line table caption.
	Desc string
	// Plan builds the single-knob plan at intensity x.
	Plan func(seed uint64, x float64) fault.Plan
}

// maxJitter is the jitter axis at x=1: 10 µs of one-sided capture
// jitter, ~35 baseline inter-arrival gaps.
const maxJitter = 10 * sim.Microsecond

// maxSkewPPM is the skew axis at x=1: a 500 ppm capture-clock
// miscalibration, ~400× a typical uncalibrated TSC.
const maxSkewPPM = 500.0

// Axes returns every fault axis in presentation order.
func Axes() []Axis {
	return []Axis{
		{
			Name: "drop", Desc: "per-packet drop probability x",
			Plan: func(seed uint64, x float64) fault.Plan { return fault.Plan{Seed: seed, Drop: x} },
		},
		{
			Name: "dup", Desc: "per-packet duplication probability x",
			Plan: func(seed uint64, x float64) fault.Plan { return fault.Plan{Seed: seed, Dup: x} },
		},
		{
			Name: "corrupt", Desc: "per-packet tag-corruption probability x",
			Plan: func(seed uint64, x float64) fault.Plan { return fault.Plan{Seed: seed, Corrupt: x} },
		},
		{
			Name: "burst", Desc: "burst-truncation start probability x (16-packet bursts)",
			Plan: func(seed uint64, x float64) fault.Plan { return fault.Plan{Seed: seed, BurstRate: x} },
		},
		{
			// Disorder peaks at rate ½: delaying *every* packet is a pure
			// translation (κ = 1 again), so the axis sweeps [0, 0.5].
			Name: "reorder", Desc: "per-packet reorder-by-delay probability x/2 (2 µs delay)",
			Plan: func(seed uint64, x float64) fault.Plan { return fault.Plan{Seed: seed, Reorder: 0.5 * x} },
		},
		{
			Name: "jitter", Desc: fmt.Sprintf("one-sided capture jitter x·%v", sim.Duration(maxJitter)),
			Plan: func(seed uint64, x float64) fault.Plan {
				return fault.Plan{Seed: seed, Jitter: sim.Duration(x * float64(maxJitter))}
			},
		},
		{
			Name: "skew", Desc: fmt.Sprintf("capture-clock skew x·%g ppm", maxSkewPPM),
			Plan: func(seed uint64, x float64) fault.Plan {
				return fault.Plan{Seed: seed, SkewPPM: x * maxSkewPPM}
			},
		},
	}
}

// AxisByName looks an axis up by name.
func AxisByName(name string) (Axis, bool) {
	for _, ax := range Axes() {
		if ax.Name == name {
			return ax, true
		}
	}
	return Axis{}, false
}

// Point is one sweep sample: the axis intensity and the metric vector
// of perturbed-vs-baseline.
type Point struct {
	X float64
	R *metrics.Result
}

// Sweep perturbs base along the axis at each intensity and scores the
// result. The zero intensity is the identity plan, so a sweep's first
// row (if xs starts at 0) doubles as the κ=1 sanity anchor.
func Sweep(ax Axis, base *trace.Trace, seed uint64, xs []float64) ([]Point, error) {
	pts := make([]Point, 0, len(xs))
	for _, x := range xs {
		plan := ax.Plan(seed, x)
		r, err := Score(base, plan.Apply(base))
		if err != nil {
			return nil, fmt.Errorf("harness: axis %s at x=%g (%v): %w", ax.Name, x, plan, err)
		}
		pts = append(pts, Point{X: x, R: r})
	}
	return pts, nil
}

// RenderTable writes one axis sweep as the fixed-width κ-degradation
// table cmd/faultsweep emits — the qualitative Figure 9 shape in text.
// The rendering is fully deterministic: byte-identical for identical
// sweeps, which is what the verify.sh replay gate diffs.
func RenderTable(w io.Writer, ax Axis, pts []Point) {
	fmt.Fprintf(w, "axis %-8s %s\n", ax.Name, ax.Desc)
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s %8s %9s\n", "x", "U", "O", "L", "I", "kappa", "common")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.4f %10.6f %10.6f %10.6f %10.6f %8.4f %9d\n",
			p.X, p.R.U, p.R.O, p.R.L, p.R.I, p.R.Kappa, p.R.Common)
	}
}
