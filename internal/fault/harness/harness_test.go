package harness

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sim"
)

const trialLen = 4000

func score(t *testing.T, p fault.Plan) *metrics.Result {
	t.Helper()
	base := Baseline("base", trialLen, 1)
	r, err := Score(base, p.Apply(base))
	if err != nil {
		t.Fatalf("Score(%v): %v", p, err)
	}
	return r
}

func TestBaselineIsDeterministicAndValid(t *testing.T) {
	a := Baseline("b", 2000, 7)
	b := Baseline("b", 2000, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2000 {
		t.Fatalf("len = %d", a.Len())
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] || a.Packets[i].Tag != b.Packets[i].Tag {
			t.Fatalf("baseline not deterministic at %d", i)
		}
		if i > 0 && a.Times[i] <= a.Times[i-1] {
			t.Fatalf("baseline not strictly increasing at %d", i)
		}
	}
}

// TestIdentityPlanScoresKappaOne: κ = 1 *exactly* — not approximately —
// under the identity plan (acceptance criterion 1).
func TestIdentityPlanScoresKappaOne(t *testing.T) {
	r := score(t, fault.Plan{Seed: 9})
	if r.U != 0 || r.O != 0 || r.L != 0 || r.I != 0 {
		t.Fatalf("identity plan moved a metric: %v", r)
	}
	if r.Kappa != 1 {
		t.Fatalf("identity plan κ = %v, want exactly 1", r.Kappa)
	}
	if r.OnlyA != 0 || r.OnlyB != 0 || r.Common != trialLen {
		t.Fatalf("identity plan changed the packet set: %v", r)
	}
}

// TestDropRaisesUMonotonically: U is *exactly* monotone in the drop
// rate (coupling, not statistics), and pure drops never move O.
func TestDropRaisesUMonotonically(t *testing.T) {
	rates := []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4}
	prevU := 0.0
	for _, rate := range rates {
		r := score(t, fault.Plan{Seed: 10, Drop: rate})
		if r.U <= prevU {
			t.Fatalf("drop=%g: U=%v not above %v", rate, r.U, prevU)
		}
		if r.O != 0 {
			t.Fatalf("drop=%g: O=%v, want exactly 0 (survivors keep order)", rate, r.O)
		}
		if r.OnlyB != 0 {
			t.Fatalf("drop=%g: OnlyB=%d, drops cannot add packets", rate, r.OnlyB)
		}
		prevU = r.U
	}
}

// TestBurstTruncationRaisesU: burst truncation is a correlated drop —
// same U/O signature, bigger steps.
func TestBurstTruncationRaisesU(t *testing.T) {
	r := score(t, fault.Plan{Seed: 11, BurstRate: 0.005})
	if r.U <= 0 || r.O != 0 || r.OnlyB != 0 {
		t.Fatalf("burst: want U>0, O=0, OnlyB=0; got %v", r)
	}
}

// TestDelayOnlyPlansMoveLatencyNotSet: skew and jitter shift time, so L
// (and I, for jitter) move while U and O stay exactly 0.
func TestDelayOnlyPlansMoveLatencyNotSet(t *testing.T) {
	for _, tc := range []struct {
		name  string
		plan  fault.Plan
		wantI bool
	}{
		{"jitter", fault.Plan{Seed: 12, Jitter: 2 * sim.Microsecond}, true},
		{"skew", fault.Plan{Seed: 13, SkewPPM: 400}, false},
		{"skew+jitter", fault.Plan{Seed: 14, SkewPPM: 200, Jitter: sim.Microsecond}, true},
	} {
		r := score(t, tc.plan)
		if r.U != 0 || r.O != 0 {
			t.Fatalf("%s: U=%v O=%v, want exactly 0 (delay faults keep the set and order)", tc.name, r.U, r.O)
		}
		if r.L <= 0 {
			t.Fatalf("%s: L=%v, want > 0", tc.name, r.L)
		}
		if tc.wantI && r.I <= 0 {
			t.Fatalf("%s: I=%v, want > 0", tc.name, r.I)
		}
		if r.Kappa >= 1 {
			t.Fatalf("%s: κ=%v, want < 1", tc.name, r.Kappa)
		}
	}
}

// TestReorderMovesONotU: reorder-by-delay changes order, never the set.
func TestReorderMovesONotU(t *testing.T) {
	r := score(t, fault.Plan{Seed: 15, Reorder: 0.05})
	if r.U != 0 {
		t.Fatalf("reorder: U=%v, want exactly 0 (the packet set is unchanged)", r.U)
	}
	if r.O <= 0 {
		t.Fatalf("reorder: O=%v, want > 0", r.O)
	}
	if r.MovedPackets == 0 {
		t.Fatal("reorder: edit script is empty")
	}
}

// TestDupAndCorruptSignatures: duplication adds B-only packets;
// corruption removes a match on both sides at once.
func TestDupAndCorruptSignatures(t *testing.T) {
	dup := score(t, fault.Plan{Seed: 16, Dup: 0.05})
	if dup.U <= 0 || dup.OnlyB == 0 || dup.OnlyA != 0 {
		t.Fatalf("dup: want U>0 with OnlyB>0, OnlyA=0; got %v", dup)
	}
	if dup.O != 0 {
		t.Fatalf("dup: O=%v, want exactly 0 (originals keep their order)", dup.O)
	}
	cor := score(t, fault.Plan{Seed: 17, Corrupt: 0.05})
	if cor.U <= 0 || cor.OnlyA == 0 || cor.OnlyB == 0 {
		t.Fatalf("corrupt: want U>0 with OnlyA>0 and OnlyB>0; got %v", cor)
	}
	if cor.OnlyA != cor.OnlyB {
		t.Fatalf("corrupt: OnlyA=%d OnlyB=%d, corruption replaces one-for-one", cor.OnlyA, cor.OnlyB)
	}
}

// TestEveryAxisDegradesKappa: at full intensity every axis must pull κ
// strictly below 1, and at intensity 0 every axis is the identity.
func TestEveryAxisDegradesKappa(t *testing.T) {
	base := Baseline("axis", trialLen, 2)
	for _, ax := range Axes() {
		pts, err := Sweep(ax, base, 18, []float64{0, 1})
		if err != nil {
			t.Fatalf("axis %s: %v", ax.Name, err)
		}
		if pts[0].R.Kappa != 1 {
			t.Fatalf("axis %s at x=0: κ=%v, want exactly 1", ax.Name, pts[0].R.Kappa)
		}
		if pts[1].R.Kappa >= pts[0].R.Kappa {
			t.Fatalf("axis %s at x=1: κ=%v did not degrade", ax.Name, pts[1].R.Kappa)
		}
	}
}

func TestAxisByName(t *testing.T) {
	if _, ok := AxisByName("drop"); !ok {
		t.Fatal("drop axis missing")
	}
	if _, ok := AxisByName("nope"); ok {
		t.Fatal("unknown axis found")
	}
}

// TestSweepRenderIsByteDeterministic is the in-process half of the
// verify.sh replay gate: the same seed renders the same bytes.
func TestSweepRenderIsByteDeterministic(t *testing.T) {
	base := Baseline("det", 2500, 3)
	ax, _ := AxisByName("drop")
	render := func() []byte {
		pts, err := Sweep(ax, base, 19, []float64{0, 0.05, 0.2})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		RenderTable(&buf, ax, pts)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("renders differ:\n%s\n---\n%s", a, b)
	}
}
