// Package fault is the deterministic fault-injection layer: it drives
// known, seeded perturbations through the replay/consistency stack so
// tests can assert that the paper's §3 metrics respond the way
// Equations 1–5 say they must. The simulator already *produces* noise
// (NIC jitter, VF contention, vCPU steal); this package is the
// adversary that injects *controlled* noise — packet drops,
// duplication, reorder-by-delay, payload corruption, burst truncation,
// clock skew/jitter — and the metamorphic test harness on top
// (internal/fault/harness, plus suites in metrics, stream and
// experiments) checks the directional invariants:
//
//   - the identity plan leaves every trace byte-identical and κ = 1;
//   - drop-only plans raise U monotonically in the rate and leave O at 0;
//   - delay-only plans (skew/jitter) move L and I but leave U and O at 0;
//   - reorder-only plans move O but leave U at 0;
//   - streaming κ stays bit-identical to batch κ under every plan.
//
// Every fault decision derives from one Plan: a uint64 seed plus
// per-fault rates. Decisions are *stateless* — a splitmix64-style hash
// of (seed, fault id, packet index) — which buys two properties the
// harness depends on:
//
//  1. Replayability: the same Plan applied to the same input always
//     produces a byte-identical output, so any failing run is
//     reproducible from the seed alone (gated in verify.sh).
//  2. Coupling: raising one fault's rate never re-rolls another
//     packet's dice — the set of dropped packets at rate r is a subset
//     of the set at rate r' > r, which is what makes "U is monotone in
//     the drop rate" an exact statement rather than a statistical one.
//
// The same Plan drives three injection surfaces: Apply (trace-level,
// for metric metamorphic tests), Injector (a nic.Endpoint that composes
// into the sim event path, see inject.go), and the delivery-level
// stall/late-watermark faults for the streaming engine (see source.go).
// Apply and Injector are equivalent by construction and a differential
// test (TestInjectorMatchesApply) holds them bit-identical.
package fault

import (
	"fmt"
	"math"
	"slices"
	"strings"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fault ids: each fault consumes its own independent random stream so
// that enabling or re-rating one fault never perturbs another's
// decisions (the coupling property above).
const (
	fDrop uint64 = 1 + iota
	fDup
	fCorrupt
	fCorruptVal
	fBurst
	fReorder
	fJitter
	fStall
)

// Plan is one fully-specified, fully-deterministic perturbation. The
// zero value is the identity plan: Apply returns an identical trace and
// an Injector forwards every frame untouched.
//
// Rates are per-packet probabilities in [0,1]; durations are simulated
// nanoseconds. All randomness derives from Seed.
type Plan struct {
	// Seed drives every stochastic decision. Two applications of the
	// same Plan to the same input are byte-identical.
	Seed uint64

	// Drop is the per-packet drop probability (queue overflow, RX
	// starvation). Dropping raises U; the survivors keep their relative
	// order, so O is untouched.
	Drop float64

	// Dup is the per-packet duplication probability: the duplicate
	// arrives DupDelay after the original (switch flood, retransmit).
	// Duplicates appear as OnlyB packets (occurrence keys stay unique),
	// raising U.
	Dup float64
	// DupDelay is how long after the original the duplicate arrives
	// (default 200 ns).
	DupDelay sim.Duration

	// Corrupt is the per-packet payload-corruption probability. A
	// corrupted packet still arrives, but its trailer tag is scrambled:
	// it matches nothing in the other trial, so *both* OnlyA and OnlyB
	// rise — a distinct U signature from a plain drop.
	Corrupt float64

	// BurstRate is the probability that a packet starts a truncated
	// burst: it and the next BurstLen−1 packets are removed, modelling
	// a DMA burst cut short by ring exhaustion.
	BurstRate float64
	// BurstLen is the burst truncation length (default 16 — a quarter
	// of a 64-packet DPDK burst).
	BurstLen int

	// Reorder is the per-packet probability of a reorder-by-delay: the
	// packet's arrival is postponed by ReorderDelay, letting later
	// packets overtake it. Reordering moves O (and, inevitably, the
	// delayed packet's latency) but never changes the packet set: U
	// stays 0.
	Reorder float64
	// ReorderDelay is the postponement applied to reordered packets
	// (default 2 µs; it must exceed typical inter-arrival gaps to
	// actually invert arrival order).
	ReorderDelay sim.Duration

	// SkewPPM scales elapsed time since the first packet by
	// (1 + SkewPPM/1e6) — a miscalibrated capture clock. Order is
	// preserved, so only L and I move. Negative skew is valid for
	// Apply; the sim-path Injector rejects it (it cannot deliver into
	// the past).
	SkewPPM float64

	// Jitter adds a one-sided uniform [0, Jitter] per-packet timestamp
	// delay (capture-path queueing). A monotone clamp keeps arrival
	// order intact, so jitter-only plans move L/I with U = O = 0.
	Jitter sim.Duration

	// Stall configures delivery-level scheduling faults for the
	// streaming engine (shard stalls, bursty late-watermark sources).
	// Stalls perturb *when* work happens, never *what* is computed:
	// the engine's output must be bit-identical under any StallPlan,
	// and the stream test suite asserts exactly that.
	Stall StallPlan
}

// StallPlan parameterizes the scheduling faults of StallSource and
// StallHook (source.go).
type StallPlan struct {
	// Rate is the per-record probability of a stall.
	Rate float64
	// Yields is how many scheduler yields one stall performs
	// (default 4).
	Yields int
	// Batch, when > 0, makes StallSource withhold records and release
	// them in batches of this size — a late-watermark fault: one side's
	// window announcements arrive in lumps while the other runs ahead
	// into the backpressure gate.
	Batch int
}

// withDefaults fills the defaulted knobs.
func (p Plan) withDefaults() Plan {
	if p.DupDelay == 0 {
		p.DupDelay = 200
	}
	if p.BurstLen <= 0 {
		p.BurstLen = 16
	}
	if p.ReorderDelay == 0 {
		p.ReorderDelay = 2 * sim.Microsecond
	}
	if p.Stall.Yields <= 0 {
		p.Stall.Yields = 4
	}
	return p
}

// IsIdentity reports whether the plan perturbs anything at all.
func (p Plan) IsIdentity() bool {
	return p.Drop == 0 && p.Dup == 0 && p.Corrupt == 0 && p.BurstRate == 0 &&
		p.Reorder == 0 && p.SkewPPM == 0 && p.Jitter == 0
}

// String renders the non-zero knobs, the way failing tests and the
// faultsweep table identify a plan.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan(seed=%d", p.Seed)
	add := func(format string, args ...any) { b.WriteString(" "); fmt.Fprintf(&b, format, args...) }
	if p.Drop > 0 {
		add("drop=%g", p.Drop)
	}
	if p.Dup > 0 {
		add("dup=%g", p.Dup)
	}
	if p.Corrupt > 0 {
		add("corrupt=%g", p.Corrupt)
	}
	if p.BurstRate > 0 {
		add("burst=%g×%d", p.BurstRate, p.withDefaults().BurstLen)
	}
	if p.Reorder > 0 {
		add("reorder=%g/%dns", p.Reorder, int64(p.withDefaults().ReorderDelay))
	}
	if p.SkewPPM != 0 {
		add("skew=%gppm", p.SkewPPM)
	}
	if p.Jitter > 0 {
		add("jitter=%dns", int64(p.Jitter))
	}
	if p.Stall.Rate > 0 {
		add("stall=%g", p.Stall.Rate)
	}
	b.WriteString(")")
	return b.String()
}

// bits returns the 64 decision bits for (seed, fault, index):
// splitmix64's output function over the xor-folded inputs. Stateless,
// so decisions are independent across faults and replayable across
// processes.
func (p Plan) bits(fault, idx uint64) uint64 {
	x := p.Seed ^ (fault * 0x9E3779B97F4A7C15) ^ (idx * 0xD1342543DE82EF95)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// u returns the decision uniform in [0,1) for (fault, idx).
func (p Plan) u(fault, idx uint64) float64 {
	return float64(p.bits(fault, idx)>>11) / (1 << 53)
}

// hit reports whether fault fires for packet idx at the given rate.
// Because the underlying uniform does not depend on the rate, hits at
// rate r are a subset of hits at any r' > r (coupling).
func (p Plan) hit(fault, idx uint64, rate float64) bool {
	return rate > 0 && p.u(fault, idx) < rate
}

// adjustTime applies the clock faults (skew then jitter) to one
// timestamp. base is the trial's first arrival; the caller applies the
// monotone clamp.
func (p Plan) adjustTime(base, t sim.Time, idx uint64) sim.Time {
	at := t
	if p.SkewPPM != 0 {
		at = base + sim.Time(math.Round(float64(t-base)*(1+p.SkewPPM/1e6)))
	}
	if p.Jitter > 0 {
		at += sim.Duration(p.u(fJitter, idx) * float64(p.Jitter+1))
	}
	return at
}

// corruptTag returns a clone of pk whose trailer tag is scrambled with
// the plan's corruption bits. The high bit is forced so the scrambled
// sequence can never collide with a generator-assigned one.
func corruptTag(pk *packet.Packet, bits uint64) *packet.Packet {
	q := pk.Clone()
	q.Tag.Seq ^= bits | 1<<63
	q.Tag.Stream ^= uint16(bits >> 16)
	return q
}

// ev is one scheduled arrival of the perturbed trace: the packet, its
// final timestamp, and its creation rank — 2i for packet i's own
// arrival, 2i+1 for its duplicate. Sorting by (at, rank) reproduces
// exactly the firing order a sim.Engine gives the equivalent Injector
// (events at one instant fire in creation order), which is what keeps
// Apply and Injector bit-identical.
type ev struct {
	pk   *packet.Packet
	at   sim.Time
	rank int64
}

// Apply returns the perturbed copy of tr. The input is never mutated;
// packet values are shared (packets are immutable once transmitted)
// except corrupted ones, which are cloned. The output always satisfies
// trace.Validate.
func (p Plan) Apply(tr *trace.Trace) *trace.Trace {
	p = p.withDefaults()
	out := trace.New(tr.Name, tr.Len())
	if tr.Len() == 0 {
		return out
	}
	evs := make([]ev, 0, tr.Len())
	base := tr.Times[0]
	prev := sim.Time(math.MinInt64)
	burstLeft := 0
	for i := 0; i < tr.Len(); i++ {
		idx := uint64(i)
		// Clock faults run over *every* packet — including ones a set
		// fault later removes — so the timeline is independent of the
		// drop decisions (maximal coupling across plans).
		at := p.adjustTime(base, tr.Times[i], idx)
		if at < prev {
			at = prev // monotone clamp: order-preserving by construction
		}
		prev = at

		if burstLeft > 0 {
			burstLeft--
			continue
		}
		if p.hit(fBurst, idx, p.BurstRate) {
			burstLeft = p.BurstLen - 1
			continue
		}
		if p.hit(fDrop, idx, p.Drop) {
			continue
		}
		pk := tr.Packets[i]
		if p.hit(fCorrupt, idx, p.Corrupt) {
			pk = corruptTag(pk, p.bits(fCorruptVal, idx))
		}
		mainAt := at
		if p.hit(fReorder, idx, p.Reorder) {
			mainAt = at + p.ReorderDelay
		}
		evs = append(evs, ev{pk: pk, at: mainAt, rank: 2 * int64(i)})
		if p.hit(fDup, idx, p.Dup) {
			evs = append(evs, ev{pk: pk, at: at + p.DupDelay, rank: 2*int64(i) + 1})
		}
	}
	if p.Reorder > 0 || p.Dup > 0 {
		// Delayed arrivals land among later packets; (at, rank) is a
		// total order (ranks are unique), so the sort is deterministic
		// regardless of algorithm stability.
		slices.SortFunc(evs, func(a, b ev) int {
			if a.at != b.at {
				if a.at < b.at {
					return -1
				}
				return 1
			}
			return int(a.rank - b.rank)
		})
	}
	for _, e := range evs {
		out.Append(e.pk, e.at)
	}
	return out
}
