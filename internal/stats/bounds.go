package stats

import (
	"fmt"
	"math"
)

// This file exports the symmetric-log bucket layout SymLogHistogram uses
// internally, so other packages (notably internal/obs, whose histograms
// must be updatable with atomics from hot paths) can classify values with
// the exact same decade structure the paper's figures are drawn in.
//
// The canonical layout for maxDecade D has 2D+5 buckets:
//
//	index 0          negative overflow (|v| > 10^(D+1), v < 0)
//	index 1 .. D+1   negative decades, large magnitude → small
//	index D+2        exact zero
//	index D+3 .. 2D+3 positive decades, small magnitude → large
//	index 2D+4       positive overflow

// SymLogBucketCount returns the number of buckets in the canonical layout.
func SymLogBucketCount(maxDecade int) int {
	if maxDecade < 0 {
		maxDecade = 0
	}
	return 2*maxDecade + 5
}

// SymLogIndex classifies v exactly the way SymLogHistogram.Add does and
// returns its index in the canonical layout.
func SymLogIndex(v int64, maxDecade int) int {
	if maxDecade < 0 {
		maxDecade = 0
	}
	if v == 0 {
		return maxDecade + 2
	}
	mag := v
	neg := false
	if v < 0 {
		mag = -v
		neg = true
	}
	d := 0
	for threshold := int64(10); mag > threshold; threshold *= 10 {
		d++
	}
	if d > maxDecade {
		if neg {
			return 0
		}
		return 2*maxDecade + 4
	}
	if neg {
		// Negative decades run large magnitude → small: decade D at
		// index 1, decade 0 at index D+1.
		return 1 + (maxDecade - d)
	}
	return maxDecade + 3 + d
}

// SymLogLabels returns human-readable bucket labels aligned with
// SymLogIndex, matching SymLogHistogram.Buckets' labelling.
func SymLogLabels(maxDecade int) []string {
	if maxDecade < 0 {
		maxDecade = 0
	}
	out := make([]string, 0, SymLogBucketCount(maxDecade))
	out = append(out, fmt.Sprintf("< -1e%d", maxDecade+1))
	for d := maxDecade; d >= 0; d-- {
		out = append(out, fmt.Sprintf("-1e%d..-1e%d", d+1, d))
	}
	out = append(out, "0")
	for d := 0; d <= maxDecade; d++ {
		out = append(out, fmt.Sprintf("+1e%d..1e%d", d, d+1))
	}
	out = append(out, fmt.Sprintf("> +1e%d", maxDecade+1))
	return out
}

// SymLogUpperBounds returns Prometheus-style `le` upper bounds aligned
// with SymLogIndex (the last bound is +Inf). Bounds are the decade edges;
// exact classification of values on an edge follows SymLogIndex.
func SymLogUpperBounds(maxDecade int) []float64 {
	if maxDecade < 0 {
		maxDecade = 0
	}
	out := make([]float64, 0, SymLogBucketCount(maxDecade))
	out = append(out, -math.Pow(10, float64(maxDecade+1)))
	for d := maxDecade; d >= 1; d-- {
		out = append(out, -math.Pow(10, float64(d)))
	}
	out = append(out, -1)
	out = append(out, 0)
	for d := 0; d <= maxDecade; d++ {
		out = append(out, math.Pow(10, float64(d+1)))
	}
	out = append(out, math.Inf(1))
	return out
}
