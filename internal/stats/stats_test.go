package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Min != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{-2, 0, 2, 4})
	if s.N != 4 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 1 {
		t.Fatalf("Mean = %v, want 1", s.Mean)
	}
	if s.Min != -2 || s.Max != 4 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.AbsMean != 2 {
		t.Fatalf("AbsMean = %v, want 2", s.AbsMean)
	}
	// Population σ of {-2,0,2,4} = sqrt((9+1+1+9)/4) = sqrt(5).
	if math.Abs(s.Std-math.Sqrt(5)) > 1e-12 {
		t.Fatalf("Std = %v, want sqrt(5)", s.Std)
	}
}

func TestSummarizeInts(t *testing.T) {
	s := SummarizeInts([]int64{1, 2, 3})
	if s.Mean != 2 || s.N != 3 {
		t.Fatalf("SummarizeInts: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuickSummaryBounds(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		fs := make([]float64, len(xs))
		for i, x := range xs {
			fs[i] = float64(x)
		}
		s := Summarize(fs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.AbsMean >= 0 && s.Std >= 0 &&
			s.AbsMean >= math.Abs(s.Mean)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentWithin(t *testing.T) {
	xs := []int64{-15, -10, -5, 0, 5, 10, 15, 100}
	if got := PercentWithin(xs, 10); got != 62.5 {
		t.Fatalf("PercentWithin = %v, want 62.5 (5 of 8)", got)
	}
	if PercentWithin(nil, 10) != 0 {
		t.Fatal("empty input should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted its input")
	}
}

func TestHistogramZeroBucket(t *testing.T) {
	h := NewSymLogHistogram(3)
	h.AddAll([]int64{0, 0, 0, 5})
	bks := h.Buckets()
	var zero, small Bucket
	for _, b := range bks {
		switch b.Label {
		case "0":
			zero = b
		case "+1e0..1e1":
			small = b
		}
	}
	if zero.Count != 3 {
		t.Fatalf("zero bucket count %d, want 3", zero.Count)
	}
	if zero.Percent != 75 {
		t.Fatalf("zero bucket percent %v, want 75", zero.Percent)
	}
	if small.Count != 1 {
		t.Fatalf("+1e0..1e1 count %d, want 1", small.Count)
	}
}

func TestHistogramDecadePlacement(t *testing.T) {
	h := NewSymLogHistogram(5)
	// 10 is in the first decade [1,10]; 11 in (10,100].
	h.Add(10)
	h.Add(11)
	h.Add(-100)
	h.Add(-101)
	counts := map[string]int64{}
	for _, b := range h.Buckets() {
		counts[b.Label] = b.Count
	}
	if counts["+1e0..1e1"] != 1 {
		t.Fatalf("10 not in first decade: %v", counts)
	}
	if counts["+1e1..1e2"] != 1 {
		t.Fatalf("11 not in second decade: %v", counts)
	}
	if counts["-1e2..-1e1"] != 1 {
		t.Fatalf("-100 not in (10,100] negative decade: %v", counts)
	}
	if counts["-1e3..-1e2"] != 1 {
		t.Fatalf("-101 not in (100,1000] negative decade: %v", counts)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewSymLogHistogram(2) // covers up to 1000
	h.Add(999)
	h.Add(1000)
	h.Add(1001)
	h.Add(-5000)
	bks := h.Buckets()
	var posOver, negOver int64
	for _, b := range bks {
		if strings.HasPrefix(b.Label, "> ") {
			posOver = b.Count
		}
		if strings.HasPrefix(b.Label, "< ") {
			negOver = b.Count
		}
	}
	if posOver != 1 {
		t.Fatalf("positive overflow %d, want 1 (only 1001)", posOver)
	}
	if negOver != 1 {
		t.Fatalf("negative overflow %d, want 1", negOver)
	}
}

func TestHistogramTotalsConserved(t *testing.T) {
	f := func(xs []int32) bool {
		h := NewSymLogHistogram(7)
		for _, x := range xs {
			h.Add(int64(x))
		}
		var sum int64
		for _, b := range h.Buckets() {
			sum += b.Count
		}
		return sum == int64(len(xs)) && h.Total() == int64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentSums(t *testing.T) {
	h := NewSymLogHistogram(4)
	for i := int64(-1000); i <= 1000; i += 7 {
		h.Add(i)
	}
	total := 0.0
	for _, b := range h.Buckets() {
		total += b.Percent
	}
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("percents sum to %v, want 100", total)
	}
}

func TestRender(t *testing.T) {
	h := NewSymLogHistogram(3)
	h.AddAll([]int64{0, 1, 5, 50, -3, 500})
	out := h.Render("IAT delta (ns)", 40)
	if !strings.Contains(out, "IAT delta (ns)") {
		t.Fatal("title missing from render")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no bars rendered")
	}
	// Empty histogram renders without panic.
	empty := NewSymLogHistogram(2)
	if out := empty.Render("empty", 0); !strings.Contains(out, "empty") {
		t.Fatal("empty render missing title")
	}
}

func TestNegativeMaxDecadeClamped(t *testing.T) {
	h := NewSymLogHistogram(-5)
	h.Add(5)
	if h.Total() != 1 {
		t.Fatal("clamped histogram unusable")
	}
}
