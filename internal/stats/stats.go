// Package stats provides the descriptive statistics the paper's figures
// and tables are built from: signed symmetric-log histograms of IAT and
// latency deltas, percent-within-bounds measures, and summary rows
// (mean/σ, abs-mean/σ, min, max) matching Table 1.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the moments of a sample, in the shape of the paper's
// Table 1 rows.
type Summary struct {
	N       int
	Mean    float64
	Std     float64
	AbsMean float64
	AbsStd  float64
	Min     float64
	Max     float64
}

// Summarize computes a Summary over xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum, absSum float64
	for _, x := range xs {
		sum += x
		absSum += math.Abs(x)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(s.N)
	s.Mean = sum / n
	s.AbsMean = absSum / n
	var sq, absSq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
		ad := math.Abs(x) - s.AbsMean
		absSq += ad * ad
	}
	s.Std = math.Sqrt(sq / n)
	s.AbsStd = math.Sqrt(absSq / n)
	return s
}

// SummarizeInts converts and summarizes an int64 sample.
func SummarizeInts(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// String renders the summary as a Table 1-style row.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f(σ=%.2f) abs=%.2f(σ=%.2f) min=%.0f max=%.0f",
		s.N, s.Mean, s.Std, s.AbsMean, s.AbsStd, s.Min, s.Max)
}

// PercentWithin returns the percentage of samples with |x| <= bound —
// the paper's headline "% of packets within ±10 ns" statistic.
func PercentWithin(xs []int64, bound int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x <= bound && x >= -bound {
			n++
		}
	}
	return 100 * float64(n) / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on
// a sorted copy.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// SymLogHistogram buckets signed values on a symmetric logarithmic axis,
// matching the paper's IAT/latency-delta figures: one bucket for zero,
// then per-decade buckets on each side ((10^k, 10^(k+1)]).
type SymLogHistogram struct {
	// MaxDecade is the exponent of the last finite decade; values with
	// |x| > 10^(MaxDecade+1) land in overflow buckets.
	MaxDecade int
	// counts[0..MaxDecade] negative decades from small to large
	// magnitude live in neg; positives in pos. zero counts exact zeros.
	neg, pos []int64
	negOver  int64
	posOver  int64
	zero     int64
	total    int64
}

// NewSymLogHistogram creates a histogram covering ±10^(maxDecade+1).
// maxDecade 7 covers the ±100 ms deltas the dual-replayer runs produce.
func NewSymLogHistogram(maxDecade int) *SymLogHistogram {
	if maxDecade < 0 {
		maxDecade = 0
	}
	return &SymLogHistogram{
		MaxDecade: maxDecade,
		neg:       make([]int64, maxDecade+1),
		pos:       make([]int64, maxDecade+1),
	}
}

// Add records one value.
func (h *SymLogHistogram) Add(v int64) {
	h.total++
	if v == 0 {
		h.zero++
		return
	}
	mag := v
	buckets := h.pos
	over := &h.posOver
	if v < 0 {
		mag = -v
		buckets = h.neg
		over = &h.negOver
	}
	d := 0
	for threshold := int64(10); mag > threshold; threshold *= 10 {
		d++
	}
	if d > h.MaxDecade {
		*over++
		return
	}
	buckets[d]++
}

// AddAll records every value in vs.
func (h *SymLogHistogram) AddAll(vs []int64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Total returns the number of recorded values.
func (h *SymLogHistogram) Total() int64 { return h.total }

// Bucket describes one histogram bar.
type Bucket struct {
	// Label like "-1e4..-1e3", "0", or "+1e1..1e2".
	Label string
	// Lo and Hi are the signed magnitude bounds (Lo exclusive toward
	// zero, Hi inclusive away from zero; 0 bucket has both zero).
	Lo, Hi int64
	Count  int64
	// Percent of all recorded values.
	Percent float64
}

// Buckets returns the bars from most-negative to most-positive,
// skipping empty outer overflow bars.
func (h *SymLogHistogram) Buckets() []Bucket {
	var out []Bucket
	pct := func(c int64) float64 {
		if h.total == 0 {
			return 0
		}
		return 100 * float64(c) / float64(h.total)
	}
	lim := int64(math.Pow(10, float64(h.MaxDecade+1)))
	if h.negOver > 0 {
		out = append(out, Bucket{
			Label: fmt.Sprintf("< -1e%d", h.MaxDecade+1),
			Lo:    math.MinInt64, Hi: -lim,
			Count: h.negOver, Percent: pct(h.negOver),
		})
	}
	for d := h.MaxDecade; d >= 0; d-- {
		lo, hi := decadeBounds(d)
		out = append(out, Bucket{
			Label: fmt.Sprintf("-1e%d..-1e%d", d+1, d),
			Lo:    -hi, Hi: -lo,
			Count: h.neg[d], Percent: pct(h.neg[d]),
		})
	}
	out = append(out, Bucket{Label: "0", Count: h.zero, Percent: pct(h.zero)})
	for d := 0; d <= h.MaxDecade; d++ {
		lo, hi := decadeBounds(d)
		out = append(out, Bucket{
			Label: fmt.Sprintf("+1e%d..1e%d", d, d+1),
			Lo:    lo, Hi: hi,
			Count: h.pos[d], Percent: pct(h.pos[d]),
		})
	}
	if h.posOver > 0 {
		out = append(out, Bucket{
			Label: fmt.Sprintf("> +1e%d", h.MaxDecade+1),
			Lo:    lim, Hi: math.MaxInt64,
			Count: h.posOver, Percent: pct(h.posOver),
		})
	}
	return out
}

// decadeBounds returns (10^d, 10^(d+1)] except d=0, which covers [1,10].
func decadeBounds(d int) (lo, hi int64) {
	hi = int64(math.Pow(10, float64(d+1)))
	if d == 0 {
		return 1, hi
	}
	return int64(math.Pow(10, float64(d))), hi
}

// Render draws an ASCII bar chart of the non-empty buckets, the textual
// equivalent of the paper's histogram figures.
func (h *SymLogHistogram) Render(title string, width int) string {
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", title, h.total)
	maxPct := 0.0
	bk := h.Buckets()
	for _, x := range bk {
		if x.Percent > maxPct {
			maxPct = x.Percent
		}
	}
	for _, x := range bk {
		if x.Count == 0 {
			continue
		}
		bar := 0
		if maxPct > 0 {
			bar = int(math.Round(x.Percent / maxPct * float64(width)))
		}
		fmt.Fprintf(&b, "%14s %7.3f%% |%s\n", x.Label, x.Percent, strings.Repeat("#", bar))
	}
	return b.String()
}
