package control

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestMarshalRoundTrip(t *testing.T) {
	cmds := []Command{
		StartRecord{At: 123456789, MaxPackets: 1 << 20},
		StopRecord{At: 42},
		StartReplay{At: 987654321},
		Status{Recorded: 1055648, Replaying: true},
		Status{Recorded: 0, Replaying: false},
	}
	for _, c := range cmds {
		out, err := Unmarshal(Marshal(c))
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if out != c {
			t.Fatalf("round trip %v != %v", out, c)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},              // unknown kind
		{kindStartRecord}, // truncated
		{kindStopRecord, 1, 2},
		{kindStartReplay},
		{kindStatus, 0},
	}
	for _, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Fatalf("Unmarshal(%v) accepted", b)
		}
	}
}

func TestQuickStartRecordRoundTrip(t *testing.T) {
	f := func(at int64, maxPkts uint64) bool {
		if at < 0 {
			at = -at
		}
		c := StartRecord{At: sim.Time(at), MaxPackets: maxPkts}
		out, err := Unmarshal(Marshal(c))
		return err == nil && out == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusDeliversWithLatency(t *testing.T) {
	e := sim.NewEngine(1)
	b := NewBus(e, sim.Constant{V: 250})
	var got Command
	var at sim.Time
	h := HandlerFunc(func(c Command, t sim.Time) { got, at = c, t })
	b.Send(h, StartReplay{At: 1000})
	e.Run()
	if got != (StartReplay{At: 1000}) {
		t.Fatalf("delivered %v", got)
	}
	if at != 250 {
		t.Fatalf("delivered at %v, want 250", at)
	}
	if b.Sent() != 1 {
		t.Fatalf("Sent() = %d", b.Sent())
	}
}

func TestBusNilLatencyInstant(t *testing.T) {
	e := sim.NewEngine(1)
	b := NewBus(e, nil)
	fired := false
	b.Send(HandlerFunc(func(Command, sim.Time) { fired = true }), StopRecord{At: 1})
	e.Run()
	if !fired {
		t.Fatal("command not delivered")
	}
	if e.Now() != 0 {
		t.Fatalf("instant delivery took %v", e.Now())
	}
}

func TestBusPreservesOrderForEqualLatency(t *testing.T) {
	e := sim.NewEngine(1)
	b := NewBus(e, sim.Constant{V: 10})
	var order []uint64
	h := HandlerFunc(func(c Command, _ sim.Time) {
		order = append(order, c.(StartRecord).MaxPackets)
	})
	for i := uint64(0); i < 10; i++ {
		b.Send(h, StartRecord{MaxPackets: i})
	}
	e.Run()
	for i, v := range order {
		if v != uint64(i) {
			t.Fatalf("order %v", order)
		}
	}
}

func TestCommandStrings(t *testing.T) {
	for _, c := range []Command{StartRecord{}, StopRecord{}, StartReplay{}, Status{}} {
		if c.String() == "" {
			t.Fatalf("%T has empty String()", c)
		}
	}
}

func TestInBandPacketCarriesCommand(t *testing.T) {
	cmd := StartReplay{At: 123456789}
	p := InBandPacket(cmd, packet.IPForNode(1), packet.IPForNode(2))
	if p.Kind != packet.KindControl {
		t.Fatalf("kind %v", p.Kind)
	}
	got, err := Unmarshal(p.Control)
	if err != nil {
		t.Fatal(err)
	}
	if got != cmd {
		t.Fatalf("decoded %v, want %v", got, cmd)
	}
	// Survives the wire: synthesize and re-parse the frame.
	b, err := p.Frame()
	if err != nil {
		t.Fatal(err)
	}
	out, err := packet.ParseFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Unmarshal(out.Control)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != cmd {
		t.Fatalf("post-wire decoded %v, want %v", got2, cmd)
	}
}

func TestInBandPacketsDistinctTags(t *testing.T) {
	a := InBandPacket(StopRecord{At: 1}, packet.IPv4{}, packet.IPv4{})
	b := InBandPacket(StopRecord{At: 1}, packet.IPv4{}, packet.IPv4{})
	if a.Tag == b.Tag {
		t.Fatal("in-band control frames must have unique tags")
	}
}
