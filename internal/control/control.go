// Package control implements Choir's control plane: the out-of-band
// channel over which the user instructs middleboxes to record and replay
// (paper §4, "all middleboxes are joined out-of-band for
// inter-communication and receiving user commands").
//
// Commands have a compact binary wire format so they can also be carried
// in-band as control packets, the resource-saving configuration the
// paper's evaluations use.
package control

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Command is a control-plane instruction.
type Command interface {
	// kind returns the wire-format discriminator.
	kind() uint8
	fmt.Stringer
}

// Wire-format discriminators.
const (
	kindStartRecord  = 1
	kindStopRecord   = 2
	kindStartReplay  = 3
	kindStatus       = 4
	kindPauseReplay  = 5
	kindResumeReplay = 6
)

// StartRecord instructs a middlebox to begin recording forwarded traffic
// at the given wall-clock time.
type StartRecord struct {
	// At is the wall-clock start time.
	At sim.Time
	// MaxPackets bounds the recording buffer (RAM is the primary
	// restriction, §5); 0 means unbounded.
	MaxPackets uint64
	// Rolling keeps the most recent MaxPackets instead of stopping at
	// the bound — the circular-buffer mode the paper lists as future
	// work ("future work can add recording in a rolling manner", §4).
	Rolling bool
}

func (StartRecord) kind() uint8 { return kindStartRecord }
func (c StartRecord) String() string {
	mode := ""
	if c.Rolling {
		mode = ", rolling"
	}
	return fmt.Sprintf("start-record(at=%v, max=%d%s)", c.At, c.MaxPackets, mode)
}

// StopRecord instructs a middlebox to stop recording at the given
// wall-clock time.
type StopRecord struct {
	At sim.Time
}

func (StopRecord) kind() uint8      { return kindStopRecord }
func (c StopRecord) String() string { return fmt.Sprintf("stop-record(at=%v)", c.At) }

// StartReplay instructs a middlebox to replay its recording, aligning
// the first recorded burst with the given future wall-clock time.
type StartReplay struct {
	At sim.Time
}

func (StartReplay) kind() uint8      { return kindStartReplay }
func (c StartReplay) String() string { return fmt.Sprintf("start-replay(at=%v)", c.At) }

// PauseReplay suspends an in-progress replay: bursts not yet
// transmitted are held. Together with ResumeReplay this is the
// breakpointing primitive the paper's introduction motivates.
type PauseReplay struct{}

func (PauseReplay) kind() uint8    { return kindPauseReplay }
func (PauseReplay) String() string { return "pause-replay" }

// ResumeReplay resumes a paused replay at the given wall-clock time;
// remaining bursts keep their recorded relative spacing.
type ResumeReplay struct {
	At sim.Time
}

func (ResumeReplay) kind() uint8      { return kindResumeReplay }
func (c ResumeReplay) String() string { return fmt.Sprintf("resume-replay(at=%v)", c.At) }

// Status is a middlebox's report back to the controller.
type Status struct {
	// Recorded is the number of packets currently held in the replay
	// buffer.
	Recorded uint64
	// Replaying reports whether a replay is in progress.
	Replaying bool
}

func (Status) kind() uint8 { return kindStatus }
func (c Status) String() string {
	return fmt.Sprintf("status(recorded=%d, replaying=%v)", c.Recorded, c.Replaying)
}

// Marshal encodes a command into its wire form.
func Marshal(c Command) []byte {
	buf := []byte{c.kind()}
	switch v := c.(type) {
	case StartRecord:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.At))
		buf = binary.BigEndian.AppendUint64(buf, v.MaxPackets)
		if v.Rolling {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case StopRecord:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.At))
	case StartReplay:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.At))
	case PauseReplay:
		// No payload.
	case ResumeReplay:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.At))
	case Status:
		buf = binary.BigEndian.AppendUint64(buf, v.Recorded)
		if v.Replaying {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	default:
		panic(fmt.Sprintf("control: unknown command %T", c))
	}
	return buf
}

// Unmarshal decodes a wire-form command.
func Unmarshal(b []byte) (Command, error) {
	if len(b) == 0 {
		return nil, errors.New("control: empty message")
	}
	need := func(n int) error {
		if len(b)-1 < n {
			return fmt.Errorf("control: message kind %d truncated: %d bytes", b[0], len(b))
		}
		return nil
	}
	switch b[0] {
	case kindStartRecord:
		if err := need(17); err != nil {
			return nil, err
		}
		return StartRecord{
			At:         sim.Time(binary.BigEndian.Uint64(b[1:9])),
			MaxPackets: binary.BigEndian.Uint64(b[9:17]),
			Rolling:    b[17] != 0,
		}, nil
	case kindStopRecord:
		if err := need(8); err != nil {
			return nil, err
		}
		return StopRecord{At: sim.Time(binary.BigEndian.Uint64(b[1:9]))}, nil
	case kindStartReplay:
		if err := need(8); err != nil {
			return nil, err
		}
		return StartReplay{At: sim.Time(binary.BigEndian.Uint64(b[1:9]))}, nil
	case kindPauseReplay:
		return PauseReplay{}, nil
	case kindResumeReplay:
		if err := need(8); err != nil {
			return nil, err
		}
		return ResumeReplay{At: sim.Time(binary.BigEndian.Uint64(b[1:9]))}, nil
	case kindStatus:
		if err := need(9); err != nil {
			return nil, err
		}
		return Status{
			Recorded:  binary.BigEndian.Uint64(b[1:9]),
			Replaying: b[9] != 0,
		}, nil
	default:
		return nil, fmt.Errorf("control: unknown command kind %d", b[0])
	}
}

// Handler consumes commands delivered by a Bus.
type Handler interface {
	HandleCommand(cmd Command, at sim.Time)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(cmd Command, at sim.Time)

// HandleCommand implements Handler.
func (f HandlerFunc) HandleCommand(cmd Command, at sim.Time) { f(cmd, at) }

// Bus is the out-of-band control network: command delivery with a
// sampled latency, independent of the experimental data plane.
type Bus struct {
	eng     *sim.Engine
	act     *sim.Actor
	latency sim.Dist
	rng     *rand.Rand
	sent    uint64
}

// NewBus creates a bus whose deliveries take latency (nil means
// instantaneous).
func NewBus(eng *sim.Engine, latency sim.Dist) *Bus {
	return &Bus{eng: eng, act: eng.NewActor(), latency: latency, rng: eng.Rand("control-bus")}
}

// Reach declares at wiring time that this bus delivers to the handler,
// registering the cross-domain link when the handler lives on another
// engine. The latency distribution's lower bound is the lookahead the
// bus can promise on that edge. A handler on the bus's own engine (or
// one that is not sim.Hosted) needs no link.
func (b *Bus) Reach(to Handler) {
	eng := sim.EngineOf(to, b.eng)
	if eng == b.eng {
		return
	}
	if r := b.eng.Router(); r != nil {
		r.Link(b.eng, eng, sim.DistFloor(b.latency))
	}
}

// Send marshals, "transmits" and delivers the command to the handler
// after the bus latency. The round trip through the wire format keeps
// the in-band and out-of-band paths identical.
func (b *Bus) Send(to Handler, cmd Command) {
	raw := Marshal(cmd)
	var d sim.Duration
	if b.latency != nil {
		if d = b.latency.Sample(b.rng); d < 0 {
			d = 0
		}
	}
	b.sent++
	// The delivery instant is fixed here so the command can cross to the
	// handler's domain; the handler sees the same timestamp its own
	// clock would read at delivery.
	at := b.eng.Now() + d
	b.act.Send(sim.EngineOf(to, b.eng), at, func() {
		decoded, err := Unmarshal(raw)
		if err != nil {
			panic(fmt.Sprintf("control: self-marshalled command failed to decode: %v", err))
		}
		to.HandleCommand(decoded, at)
	})
}

// Sent returns the number of commands sent on the bus.
func (b *Bus) Sent() uint64 { return b.sent }

// InBandFrameLen is the frame size used for in-band control packets —
// small, but large enough for every command plus headers and trailer.
const InBandFrameLen = 128

// inBandSeq distinguishes successive in-band control frames' tags.
var inBandSeq uint64

// InBandPacket wraps a command into a control frame ready to transmit
// on the experimental data plane ("the program ... can run with just
// the 2 bridged interfaces if the control signals run in-band", §5).
// The receiving middlebox recognizes the control port, executes the
// command, and does not forward the frame.
func InBandPacket(cmd Command, src, dst packet.IPv4) *packet.Packet {
	inBandSeq++
	return &packet.Packet{
		Tag:      packet.Tag{Replayer: 0xFFFD, Seq: inBandSeq},
		Kind:     packet.KindControl,
		FrameLen: InBandFrameLen,
		Flow: packet.FiveTuple{
			Src: src, Dst: dst,
			SrcPort: packet.ControlPort, DstPort: packet.ControlPort,
			Proto: packet.ProtoUDP,
		},
		Control: Marshal(cmd),
	}
}
