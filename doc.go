// Package repro reproduces "Network Replay and Consistency Across
// Testbeds" (Wolosewicz et al., SC Workshops '25) in pure Go: the Choir
// 100 Gbps in-situ packet replayer, the κ consistency metric, a
// discrete-event testbed substrate standing in for the paper's physical
// hardware, and a benchmark harness regenerating every table and figure
// of the evaluation.
//
// Start with the public API in package repro/choir, the runnable
// examples under examples/, and the CLIs under cmd/. DESIGN.md maps the
// paper onto the module layout; EXPERIMENTS.md records paper-vs-measured
// results.
package repro
