#!/bin/sh
# verify.sh — the repo's check suite: vet, build, race-enabled tests
# (the obs registry/tracer concurrency tests gate first), and the
# streaming-vs-batch κ benchmark (pkts/s and bytes allocated) with a
# guard bounding the overhead of enabled telemetry.
#
#	./verify.sh          # vet + build + tests under -race
#	./verify.sh -bench   # also run BenchmarkStreamKappa + obs guard
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/obs (concurrency gate)"
go test -race ./internal/obs

echo "== go test -race ./..."
go test -race ./...

if [ "${1:-}" = "-bench" ]; then
	echo "== BenchmarkStreamKappa (streaming vs batch windowed κ, obs on vs off)"
	out=$(go test ./internal/stream -run='^$' -bench=StreamKappa -benchmem)
	printf '%s\n' "$out"
	echo "== obs overhead guard (shards=4, enabled registry vs disabled)"
	printf '%s\n' "$out" | awk '
		{
			for (i = 2; i <= NF; i++) if ($i == "pkts/s") {
				if ($1 ~ /shards=4\/obs(-[0-9]+)?$/) on = $(i-1)
				else if ($1 ~ /shards=4(-[0-9]+)?$/) off = $(i-1)
			}
		}
		END {
			if (on <= 0 || off <= 0) { print "FAIL: missing pkts/s samples"; exit 1 }
			ovh = (off - on) / off * 100
			printf "obs-enabled throughput %.0f pkts/s vs %.0f disabled (%.1f%% overhead)\n", on, off, ovh
			if (ovh > 25) { print "FAIL: enabled-obs overhead exceeds 25%"; exit 1 }
		}'
fi

echo "ok"
