#!/bin/sh
# verify.sh — the repo's check suite: vet, build, race-enabled tests,
# and the streaming-vs-batch κ benchmark (pkts/s and bytes allocated).
#
#	./verify.sh          # vet + build + tests under -race
#	./verify.sh -bench   # also run BenchmarkStreamKappa
set -eu
cd "$(dirname "$0")"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

if [ "${1:-}" = "-bench" ]; then
	echo "== BenchmarkStreamKappa (streaming vs batch windowed κ)"
	go test ./internal/stream -run='^$' -bench=StreamKappa -benchmem
fi

echo "ok"
