#!/bin/sh
# verify.sh — the repo's check suite: vet, build, race-enabled tests
# (the obs registry/tracer concurrency tests gate first), a short fuzz
# smoke over the pcap/metrics fuzz targets, a deterministic-replay gate
# (the same fault seed twice must render a byte-identical κ report), a
# campaign resume gate (a campaign interrupted twice and resumed must
# render the uninterrupted table byte-for-byte), a federation gate (a
# 4-site federated campaign must render the single-site bytes, and a
# race-enabled site-drop run must degrade deterministically with its
# losses annotated), a choird service gate
# (a served consistency report must be byte-identical to the offline
# CLI's, including after a SIGTERM mid-session and journal resume), a
# span-tracing gate (serving with -spans=false must produce the same
# bytes as the spans-on daemon, and the spans-on trace endpoint must
# yield a tree choirtrace reconstructs the serving critical path from),
# and the streaming-vs-batch κ benchmark (pkts/s and bytes allocated)
# with a guard bounding the overhead of enabled telemetry.
#
#	./verify.sh          # vet + build + tests under -race
#	                     # + fuzz smoke + fault-replay gate
#	./verify.sh -bench   # also: BenchmarkStreamKappa + obs guard,
#	                     # and allocs/op regression guards on
#	                     # MetricsCompare and StreamKappa
set -eu
cd "$(dirname "$0")"
# Captured before the choird gate's `set --` clobbers the script args.
MODE="${1:-}"

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./internal/obs (concurrency gate)"
go test -race ./internal/obs

echo "== go test -race ./internal/parallel ./internal/experiments (scheduler differential gate)"
go test -race ./internal/parallel ./internal/experiments

echo "== go test -race ./..."
go test -race ./...

echo "== fuzz smoke (10s per target; seed corpus under testdata/fuzz runs in every plain go test)"
go test ./internal/pcap -run='^$' -fuzz='^FuzzStream$' -fuzztime=10s
go test ./internal/metrics -run='^$' -fuzz='^FuzzCompare$' -fuzztime=10s

echo "== deterministic-replay gate (same fault seed twice => byte-identical kappa report)"
replay_tmp=$(mktemp -d)
trap 'kill "${CHOIRD_PID:-}" 2>/dev/null || true; rm -rf "$replay_tmp"' EXIT
go build -o "$replay_tmp/faultsweep" ./cmd/faultsweep
"$replay_tmp/faultsweep" -seed 7 -packets 8000 >"$replay_tmp/sweep1.txt"
"$replay_tmp/faultsweep" -seed 7 -packets 8000 >"$replay_tmp/sweep2.txt"
cmp "$replay_tmp/sweep1.txt" "$replay_tmp/sweep2.txt"
echo "faultsweep -seed 7: two runs byte-identical ($(wc -c <"$replay_tmp/sweep1.txt") bytes)"

echo "== campaign resume gate (interrupt twice, resume to completion => byte-identical table)"
go build -o "$replay_tmp/experiments" ./cmd/experiments
campaign_run() {
	"$replay_tmp/experiments" -campaign gate -envs "Local Single-Replayer" \
		-conditions "clean;drop=0.02,jitter=2e3" \
		-reps 2 -packets 1000 -runs 2 -seed 7 "$@" 2>/dev/null
}
# Uninterrupted reference run.
campaign_run -journal "$replay_tmp/full.journal" >"$replay_tmp/campaign-full.txt"
# Interrupted run: checkpoint after one trial, twice, then resume to the end.
campaign_run -journal "$replay_tmp/chunk.journal" -stop-after 1 >"$replay_tmp/campaign-resumed.txt"
campaign_run -journal "$replay_tmp/chunk.journal" -stop-after 1 -resume >"$replay_tmp/campaign-resumed.txt"
campaign_run -journal "$replay_tmp/chunk.journal" -resume >"$replay_tmp/campaign-resumed.txt"
cmp "$replay_tmp/campaign-full.txt" "$replay_tmp/campaign-resumed.txt"
echo "campaign -seed 7: interrupted-twice-and-resumed table byte-identical ($(wc -c <"$replay_tmp/campaign-full.txt") bytes)"

echo "== parallel-in-space gate (sharded simulation core ≡ sequential engine, byte-for-byte)"
# The same artifact rendered by the single-engine core and by the
# 4-domain sharded core must print identical bytes: same traces, same
# kappa, same obs counters. table2 spans every environment, including
# noise contention and the dual-replayer merge.
shard_run() { # $1 = -sim-shards value
	"$replay_tmp/experiments" -run table2 -packets 2000 -runs 2 -seed 7 \
		-sim-shards "$1" 2>/dev/null
}
shard_run 1 >"$replay_tmp/shards1.txt"
shard_run 4 >"$replay_tmp/shards4.txt"
cmp "$replay_tmp/shards1.txt" "$replay_tmp/shards4.txt"
echo "experiments table2: -sim-shards 4 byte-identical to -sim-shards 1 ($(wc -c <"$replay_tmp/shards1.txt") bytes)"
# Same equivalence under fault plans, with the race detector watching the
# domain handoffs (go run -race; the campaign path covers the injector).
shard_campaign() { # $1 = -sim-shards value
	go run -race ./cmd/experiments -campaign psimgate -envs "Local Single-Replayer" \
		-conditions "drop=0.005,jitter=2e3;dup=0.002,reorder=0.01" \
		-reps 1 -packets 1000 -runs 2 -seed 7 \
		-journal "$replay_tmp/psim-$1.journal" -sim-shards "$1" 2>/dev/null
}
shard_campaign 1 >"$replay_tmp/psim-c1.txt"
shard_campaign 4 >"$replay_tmp/psim-c4.txt"
cmp "$replay_tmp/psim-c1.txt" "$replay_tmp/psim-c4.txt"
echo "fault campaign under -race: sharded core byte-identical to sequential ($(wc -c <"$replay_tmp/psim-c1.txt") bytes)"

echo "== differentiation gate (diffdetect: rerun + sharded byte-identical; throttled flags, neutral control silent)"
go build -o "$replay_tmp/diffdetect" ./cmd/diffdetect
diff_run() { # extra diffdetect args appended
	"$replay_tmp/diffdetect" -workload all -rate-frac 0.5 -seed 11 \
		-packets 1200 -runs 2 "$@" 2>/dev/null
}
# Same seed twice: the verdict tables must be byte-identical.
diff_run >"$replay_tmp/diff1.txt"
diff_run >"$replay_tmp/diff2.txt"
cmp "$replay_tmp/diff1.txt" "$replay_tmp/diff2.txt"
# Every throttled app must be flagged.
[ "$(grep -c '^differentiation: DETECTED' "$replay_tmp/diff1.txt")" = 5 ] ||
	{ echo "FAIL: throttled workloads not all flagged"; cat "$replay_tmp/diff1.txt"; exit 1; }
# The sharded simulation core must render the same verdicts.
diff_run -sim-shards 4 >"$replay_tmp/diff4.txt"
cmp "$replay_tmp/diff1.txt" "$replay_tmp/diff4.txt"
# Neutral control: no shaper in either arm, nothing may flag.
diff_run -neutral >"$replay_tmp/diffneutral.txt"
grep -q "DETECTED" "$replay_tmp/diffneutral.txt" &&
	{ echo "FAIL: neutral control flagged differentiation"; cat "$replay_tmp/diffneutral.txt"; exit 1; }
[ "$(grep -c '^differentiation: none' "$replay_tmp/diffneutral.txt")" = 5 ] ||
	{ echo "FAIL: neutral control missing verdicts"; cat "$replay_tmp/diffneutral.txt"; exit 1; }
echo "diffdetect -workload all: throttled verdicts deterministic and shard-invariant ($(wc -c <"$replay_tmp/diff1.txt") bytes), neutral control silent"

echo "== federation gate (federated κ ≡ single-site, byte-for-byte; site drop degrades, never aborts)"
# The same trial matrix run by 1 site and by a 4-site ring must render
# identical bytes: site count, trial assignment, and merge-tree shape
# are invisible in the document (internal/federation's identity).
go build -o "$replay_tmp/fedsim" ./cmd/fedsim
fed_run() { # extra fedsim args appended
	"$replay_tmp/fedsim" -envs "Local Single-Replayer" \
		-conditions "clean;drop=0.02,jitter=2e3" \
		-reps 2 -packets 1000 -runs 2 -seed 7 "$@" 2>/dev/null
}
fed_run -sites 1 >"$replay_tmp/fed1.txt"
fed_run -sites 4 >"$replay_tmp/fed4.txt"
cmp "$replay_tmp/fed1.txt" "$replay_tmp/fed4.txt"
echo "fedsim: -sites 4 byte-identical to -sites 1 ($(wc -c <"$replay_tmp/fed1.txt") bytes)"
# The same identity through the experiments CLI's -federate path.
"$replay_tmp/experiments" -federate -sites 4 -envs "Local Single-Replayer" \
	-conditions "clean;drop=0.02,jitter=2e3" \
	-reps 2 -packets 1000 -runs 2 -seed 7 2>/dev/null >"$replay_tmp/fedexp.txt"
cmp "$replay_tmp/fed1.txt" "$replay_tmp/fedexp.txt"
echo "experiments -federate: same document as fedsim"
# Site-drop campaign under the race detector, twice: crashing a site
# mid-campaign must yield the same annotated degraded table both times
# (deterministic degradation), with the loss annotation present.
fed_drop() {
	go run -race ./cmd/fedsim -envs "Local Single-Replayer" \
		-conditions "clean;drop=0.02,jitter=2e3" \
		-reps 4 -packets 1000 -runs 2 -seed 7 \
		-sites 4 -crash site0@2 2>/dev/null
}
fed_drop >"$replay_tmp/feddrop1.txt"
fed_drop >"$replay_tmp/feddrop2.txt"
cmp "$replay_tmp/feddrop1.txt" "$replay_tmp/feddrop2.txt"
grep -q "partials lost to site failure" "$replay_tmp/feddrop1.txt" ||
	{ echo "FAIL: site-drop run lacks the degradation annotation"; cat "$replay_tmp/feddrop1.txt"; exit 1; }
grep -q "| lost" "$replay_tmp/feddrop1.txt" ||
	{ echo "FAIL: site-drop table has no lost rows"; cat "$replay_tmp/feddrop1.txt"; exit 1; }
echo "fedsim -crash site0@2 under -race: degraded table deterministic, losses annotated"

echo "== choird service gate (served report ≡ offline consistency; SIGTERM drain + journal resume)"
go build -o "$replay_tmp/choird" ./cmd/choird
go build -o "$replay_tmp/consistency" ./cmd/consistency
go build -o "$replay_tmp/choirsim" ./cmd/choirsim
mkdir -p "$replay_tmp/caps"
"$replay_tmp/choirsim" -packets 3000 -runs 2 -seed 11 -out "$replay_tmp/caps" >/dev/null
set -- "$replay_tmp/caps"/run-*.pcap
cp "$1" "$replay_tmp/A.pcap"
cp "$2" "$replay_tmp/B.pcap"
(cd "$replay_tmp" && ./consistency A.pcap B.pcap >offline.txt)

choird_start() { # $1 = log file; extra args appended (later flags win)
	log="$1"
	shift
	"$replay_tmp/choird" -addr 127.0.0.1:0 -dir "$replay_tmp/state" -seed 3 "$@" >"$log" 2>&1 &
	CHOIRD_PID=$!
	CHOIRD_URL=""
	i=0
	while [ $i -lt 100 ]; do
		CHOIRD_URL=$(sed -n 's|^choird: listening on \(http://[^ ]*\).*|\1|p' "$log")
		[ -n "$CHOIRD_URL" ] && return 0
		kill -0 "$CHOIRD_PID" 2>/dev/null || { echo "FAIL: choird exited early"; cat "$log"; exit 1; }
		sleep 0.1
		i=$((i + 1))
	done
	echo "FAIL: choird never printed its listen address"
	cat "$log"
	exit 1
}
choird_poll() { # $1 = session id; waits for a 200 result
	i=0
	while [ $i -lt 200 ]; do
		code=$(curl -s -o /dev/null -w '%{http_code}' "$CHOIRD_URL/v1/sessions/$1/result")
		[ "$code" = 200 ] && return 0
		[ "$code" = 202 ] || { echo "FAIL: session $1 result returned HTTP $code"; exit 1; }
		sleep 0.1
		i=$((i + 1))
	done
	echo "FAIL: session $1 never finished"
	exit 1
}

choird_start "$replay_tmp/choird1.log"
sid=$(curl -s -F a=@"$replay_tmp/A.pcap" -F b=@"$replay_tmp/B.pcap" "$CHOIRD_URL/v1/sessions" |
	sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$sid" ] || { echo "FAIL: upload returned no session id"; exit 1; }
choird_poll "$sid"
curl -s "$CHOIRD_URL/v1/sessions/$sid/result?format=consistency" >"$replay_tmp/served.txt"
cmp "$replay_tmp/served.txt" "$replay_tmp/offline.txt"
echo "choird session $sid: served consistency report byte-identical to offline CLI"

# Drain/resume: pause dispatch, admit a session (journaled, never run),
# SIGTERM the daemon, restart over the same state dir — the session must
# resume and serve the same bytes the CLI renders for the pair.
curl -s -X POST "$CHOIRD_URL/v1/admin/pause" >/dev/null
sid2=$(curl -s -F a=@"$replay_tmp/A.pcap" -F b=@"$replay_tmp/B.pcap" "$CHOIRD_URL/v1/sessions" |
	sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$sid2" ] || { echo "FAIL: pre-drain upload returned no session id"; exit 1; }
kill -TERM "$CHOIRD_PID"
wait "$CHOIRD_PID" || { echo "FAIL: choird drain exited non-zero"; cat "$replay_tmp/choird1.log"; exit 1; }
choird_start "$replay_tmp/choird2.log"
choird_poll "$sid2"
curl -s "$CHOIRD_URL/v1/sessions/$sid2/result?format=consistency" >"$replay_tmp/resumed.txt"
cmp "$replay_tmp/resumed.txt" "$replay_tmp/offline.txt"
kill -TERM "$CHOIRD_PID"
wait "$CHOIRD_PID" || true
CHOIRD_PID=""
echo "choird session $sid2: SIGTERM-interrupted, journal-resumed, report still byte-identical"

echo "== span-tracing gate (spans off => same served bytes; trace endpoint + choirtrace critical path)"
go build -o "$replay_tmp/choirtrace" ./cmd/choirtrace
# The gates above ran with tracing on (the default). A -spans=false
# daemon over the same pair must serve the identical report: spans
# observe the serving path, they never steer it.
choird_start "$replay_tmp/choird3.log" -dir "$replay_tmp/state-nospans" -spans=false
sid3=$(curl -s -F a=@"$replay_tmp/A.pcap" -F b=@"$replay_tmp/B.pcap" "$CHOIRD_URL/v1/sessions" |
	sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$sid3" ] || { echo "FAIL: spans-off upload returned no session id"; exit 1; }
choird_poll "$sid3"
curl -s "$CHOIRD_URL/v1/sessions/$sid3/result?format=consistency" >"$replay_tmp/nospans.txt"
cmp "$replay_tmp/nospans.txt" "$replay_tmp/offline.txt"
code=$(curl -s -o /dev/null -w '%{http_code}' "$CHOIRD_URL/v1/sessions/$sid3/trace")
[ "$code" = 404 ] || { echo "FAIL: spans-off trace endpoint returned HTTP $code, want 404"; exit 1; }
kill -TERM "$CHOIRD_PID"
wait "$CHOIRD_PID" || true
CHOIRD_PID=""
echo "choird session $sid3: -spans=false report byte-identical to spans-on and offline"

# Spans-on daemon: record the session's causal tree, then reconstruct
# its critical path offline with choirtrace.
choird_start "$replay_tmp/choird4.log" -dir "$replay_tmp/state-spans"
code=$(curl -s -o /dev/null -w '%{http_code}' "$CHOIRD_URL/readyz")
[ "$code" = 200 ] || { echo "FAIL: /readyz returned HTTP $code on an idle daemon"; exit 1; }
sid4=$(curl -s -F a=@"$replay_tmp/A.pcap" -F b=@"$replay_tmp/B.pcap" "$CHOIRD_URL/v1/sessions" |
	sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$sid4" ] || { echo "FAIL: spans-on upload returned no session id"; exit 1; }
choird_poll "$sid4"
curl -s "$CHOIRD_URL/v1/sessions/$sid4/result?format=consistency" >"$replay_tmp/spanson.txt"
cmp "$replay_tmp/spanson.txt" "$replay_tmp/offline.txt"
curl -s "$CHOIRD_URL/v1/sessions/$sid4/trace" >"$replay_tmp/trace.json"
kill -TERM "$CHOIRD_PID"
wait "$CHOIRD_PID" || true
CHOIRD_PID=""
"$replay_tmp/choirtrace" "$replay_tmp/trace.json" >"$replay_tmp/choirtrace.txt"
grep -q "$sid4" "$replay_tmp/choirtrace.txt" || { echo "FAIL: choirtrace lost session $sid4"; cat "$replay_tmp/choirtrace.txt"; exit 1; }
for stage in admission spool wal 'compare\[' render; do
	grep -q "$stage" "$replay_tmp/choirtrace.txt" || { echo "FAIL: stage $stage missing from critical path"; cat "$replay_tmp/choirtrace.txt"; exit 1; }
done
echo "choird session $sid4: recorded trace reconstructs admission→spool→wal→compare[...]→render"

if [ "$MODE" = "-bench" ]; then
	echo "== BenchmarkStreamKappa (streaming vs batch windowed κ, obs on vs off)"
	out=$(go test ./internal/stream -run='^$' -bench=StreamKappa -benchmem)
	printf '%s\n' "$out"
	echo "== obs overhead guard (shards=4, enabled registry vs disabled)"
	printf '%s\n' "$out" | awk '
		{
			for (i = 2; i <= NF; i++) if ($i == "pkts/s") {
				if ($1 ~ /shards=4\/obs(-[0-9]+)?$/) on = $(i-1)
				else if ($1 ~ /shards=4(-[0-9]+)?$/) off = $(i-1)
			}
		}
		END {
			if (on <= 0 || off <= 0) { print "FAIL: missing pkts/s samples"; exit 1 }
			ovh = (off - on) / off * 100
			printf "obs-enabled throughput %.0f pkts/s vs %.0f disabled (%.1f%% overhead)\n", on, off, ovh
			if (ovh > 25) { print "FAIL: enabled-obs overhead exceeds 25%"; exit 1 }
		}'

	echo "== allocs/op regression guards (hot-path allocation overhaul)"
	# BenchmarkMetricsCompare: seed tree measured 2128 allocs/op on the
	# same 200k-packet workload; the guard holds the scratch-arena win at
	# >=30% below seed (budget 1490; currently ~222).
	cmp_out=$(go test . -run='^$' -bench='MetricsCompare$' -benchmem -benchtime=3x)
	printf '%s\n' "$cmp_out"
	printf '%s\n' "$cmp_out" | awk '
		/BenchmarkMetricsCompare/ {
			for (i = 2; i <= NF; i++) if ($i == "allocs/op") allocs = $(i-1)
		}
		END {
			if (allocs == "") { print "FAIL: no allocs/op sample for MetricsCompare"; exit 1 }
			printf "BenchmarkMetricsCompare: %d allocs/op (budget 1490 = 30%% under the 2128 seed)\n", allocs
			if (allocs + 0 > 1490) { print "FAIL: MetricsCompare allocs/op regressed past budget"; exit 1 }
		}'
	# BenchmarkHandoff: the cross-domain handoff path (actor Send → SPSC
	# ring → Inject → pooled heap insert) must not allocate in steady
	# state; budget 2 leaves headroom for runtime noise only.
	ho_out=$(go test ./internal/psim -run='^$' -bench='Handoff$' -benchmem)
	printf '%s\n' "$ho_out"
	printf '%s\n' "$ho_out" | awk '
		/BenchmarkHandoff/ {
			for (i = 2; i <= NF; i++) if ($i == "allocs/op") allocs = $(i-1)
		}
		END {
			if (allocs == "") { print "FAIL: no allocs/op sample for psim Handoff"; exit 1 }
			printf "BenchmarkHandoff: %d allocs/op (budget 2; steady state is 0)\n", allocs
			if (allocs + 0 > 2) { print "FAIL: psim handoff path allocates"; exit 1 }
		}'
	# BenchmarkStreamKappa shards=4: position-buffer and winState reuse
	# landed ~4.5k allocs/op on the 50k-packet pair; budget 9000 catches
	# a pooling regression while leaving noise headroom.
	printf '%s\n' "$out" | awk '
		{
			for (i = 2; i <= NF; i++) if ($i == "allocs/op") {
				if ($1 ~ /stream\/shards=4(-[0-9]+)?$/) allocs = $(i-1)
			}
		}
		END {
			if (allocs == "") { print "FAIL: no allocs/op sample for StreamKappa shards=4"; exit 1 }
			printf "BenchmarkStreamKappa shards=4: %d allocs/op (budget 9000)\n", allocs
			if (allocs + 0 > 9000) { print "FAIL: StreamKappa allocs/op regressed past budget"; exit 1 }
		}'
fi

echo "ok"
