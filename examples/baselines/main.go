// Baselines: reproduce the paper's §9 comparison in numbers — Choir vs
// tcpreplay-style OS-timer pacing vs MoonGen-style invalid-packet gap
// control, on both a dedicated line and a shared VF with a TCP
// co-tenant.
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/nic"
	"repro/internal/packet"
)

func main() {
	dedicated := nic.Profile{Name: "dedicated 100G", LineRateBps: packet.Gbps(100)}
	shared := nic.Profile{Name: "shared 100G VF", LineRateBps: packet.Gbps(100), PacketInterleave: true}

	fmt.Println("Replay strategies on a dedicated 100 Gbps line (quiet):")
	res, err := baseline.Compare(baseline.DefaultSet(), dedicated, baseline.CompareConfig{Packets: 20_000})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println()
	fmt.Println("Same strategies on a shared VF with 8 TCP streams as co-tenant:")
	res, err = baseline.Compare(baseline.DefaultSet(), shared, baseline.CompareConfig{Packets: 20_000, Shared: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("  %v\n", r)
	}
	fmt.Println()
	fmt.Println("Reading the table:")
	fmt.Println("  - MoonGen's gap fidelity is unbeatable when it owns the line, but")
	fmt.Println("    it saturates the link: the co-tenant's throughput collapses —")
	fmt.Println("    exactly why the paper rules it out on shared testbeds.")
	fmt.Println("  - tcpreplay is polite but µs-granular timers make it unfaithful")
	fmt.Println("    and inconsistent run to run.")
	fmt.Println("  - Choir re-bursts traffic (so raw gap fidelity is mid-pack) but its")
	fmt.Println("    replays are the most consistent with each other while leaving")
	fmt.Println("    the co-tenant's bandwidth intact.")
}
