// Parallel replay: the paper's Figure 1 scenario — one packet stream
// split across two replay nodes whose outputs merge at a single
// recorder. Replay-start slop between the nodes reorders whole bursts,
// which the ordering metric O and the edit-script distances (Table 1)
// make visible.
//
//	go run ./examples/parallel_replay
package main

import (
	"fmt"
	"log"

	"repro/choir"
	"repro/internal/stats"
)

func main() {
	env := choir.LocalDual()
	fmt.Printf("environment: %s\n  %s\n\n", env.Name, env.Description)

	res, err := choir.RunExperiment(env, choir.ExperimentConfig{
		Packets:    60_000, // total across both 20 Gbps streams
		Runs:       3,
		Seed:       7,
		KeepDeltas: true, // retain move distances for the Table 1 view
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recorded %d packets across %d replayers\n\n", res.Recorded, env.Replayers)
	for i, r := range res.Results {
		run := string(rune('B' + i))
		fmt.Printf("run %s vs A: O=%.4f  I=%.4f  κ=%.4f\n", run, r.O, r.I, r.Kappa)
		fmt.Printf("  %d of %d common packets (%.1f%%) appear in the edit script\n",
			r.MovedPackets, r.Common, r.MovedFraction()*100)
		s := stats.SummarizeInts(r.MoveDistances)
		fmt.Printf("  move distances: mean %.1f (σ %.1f), abs mean %.1f, min %.0f, max %.0f\n\n",
			s.Mean, s.Std, s.AbsMean, s.Min, s.Max)
	}

	fmt.Println("Interpretation: each replayer's own stream stays ordered; the")
	fmt.Println("interleaving of the two streams shifts between runs, so ~half the")
	fmt.Println("packets move — as whole bursts — exactly the §6.2 observation.")
}
