// Noisy testbed: quantify what a co-located tenant does to replay
// consistency on shared SR-IOV NICs — the paper's §7.1 experiment. The
// same environment is run quiet and with eight iperf3-style TCP streams
// hammering a second virtual function of the replayer's physical NIC.
//
//	go run ./examples/noisy_testbed
package main

import (
	"fmt"
	"log"

	"repro/choir"
)

func main() {
	cfg := choir.ExperimentConfig{Packets: 60_000, Runs: 3, Seed: 11}

	quiet, err := choir.RunExperiment(choir.FabricShared40(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	noisy, err := choir.RunExperiment(choir.FabricShared40Noisy(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FABRIC shared VFs at 40 Gbps, quiet site vs noisy co-tenant")
	fmt.Println()
	fmt.Printf("%-22s %10s %10s %10s %10s\n", "", "U", "I", "L", "κ")
	q, n := quiet.Mean, noisy.Mean
	fmt.Printf("%-22s %10.3g %10.4f %10.3g %10.4f\n", "quiet", q.U, q.I, q.L, q.Kappa)
	fmt.Printf("%-22s %10.3g %10.4f %10.3g %10.4f\n", "with iperf3 co-tenant", n.U, n.I, n.L, n.Kappa)
	fmt.Println()

	drops := 0
	for _, m := range noisy.Missing {
		drops += m
	}
	fmt.Printf("drops under noise across %d runs: %d packets (quiet runs: 0)\n", len(noisy.Missing), drops)
	fmt.Printf("κ degradation: %.4f → %.4f (paper: 0.967 → 0.749)\n", q.Kappa, n.Kappa)
	fmt.Println()
	fmt.Println("The contention mechanism is emergent: the physical NIC interleaves")
	fmt.Println("the co-tenant's jumbo frames between the replay's packets, and the")
	fmt.Println("replayer's VF ring occasionally overflows during host-steal bursts —")
	fmt.Println("no drop or jitter is injected anywhere by hand.")
}
