// Consistency over time: the windowed extension of the paper's metric.
// A whole-trial κ averages a trial's behaviour into one number; slicing
// the comparison into time windows shows *when* the environment
// misbehaved. Here a 1 ms link flap is injected into one replay — the
// aggregate κ drops a little, the windowed view pinpoints the episode.
//
//	go run ./examples/consistency_over_time
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/control"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

func main() {
	eng := sim.NewEngine(5)
	top := testbed.Build(eng, testbed.LocalSingle())

	// Record ~5.7 ms of 40 Gbps traffic.
	top.Broadcast(control.StartRecord{At: sim.Millisecond})
	top.StartGenerators(20_000, 2*sim.Millisecond)
	eng.RunUntil(20 * sim.Millisecond)
	top.Broadcast(control.StopRecord{At: top.WallNow()})
	eng.RunUntil(eng.Now() + sim.Millisecond)

	runTrial := func(name string, flap bool) *trace.Trace {
		top.Recorder.StartTrial(name)
		start := top.WallNow() + 10*sim.Millisecond
		if flap {
			mid := start + 2*sim.Millisecond
			top.Switch.Port(2).FailBetween(mid, mid+sim.Millisecond)
			fmt.Printf("injected link flap into run %s: [%v, %v)\n", name, mid, mid+sim.Millisecond)
		}
		top.Broadcast(control.StartReplay{At: start})
		eng.RunUntil(start + 20*sim.Millisecond)
		return top.Recorder.StartTrial("scratch")
	}

	a := runTrial("A", false).DataOnly().Normalize()
	b := runTrial("B", true).DataOnly().Normalize()

	whole, err := metrics.Compare(a, b, metrics.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwhole-trial score: %v\n", whole)
	fmt.Printf("(%d packets lost in the flap)\n\n", whole.OnlyA)

	ws, err := metrics.CompareWindowed(a, b, sim.Millisecond, metrics.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-millisecond κ:")
	for _, w := range ws {
		bar := int(w.Result.Kappa * 40)
		if bar < 0 {
			bar = 0
		}
		marker := ""
		if w.Result.U > 0 {
			marker = fmt.Sprintf("  ← %d missing", w.Result.OnlyA)
		}
		fmt.Printf("  [%4.1fms, %4.1fms)  κ=%.4f |%s%s\n",
			w.Start.Seconds()*1e3, w.End.Seconds()*1e3, w.Result.Kappa,
			strings.Repeat("#", bar), marker)
	}
	worst := metrics.WorstWindow(ws)
	fmt.Printf("\nworst window: %v — exactly where the flap was injected.\n", worst)
}
