// Streaming κ: the bounded-memory form of the windowed comparison.
// The batch pipeline holds both trials in RAM before scoring; here two
// replay trials from a FABRIC shared-NIC environment are scored (a)
// from pcap files read one record at a time, and (b) live, through a
// channel-backed tap that receives packets while a producer is still
// emitting them. Both paths report the same per-window κ as the batch
// ConsistencyWindowed — bit for bit — while peak memory stays pinned
// to the window length and shard buffers, not the trial length.
//
//	go run ./examples/streaming_kappa
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/choir"
	"repro/internal/sim"
)

func main() {
	// Run one record-then-replay experiment to get two real trials.
	res, err := choir.RunExperiment(choir.FabricShared40(), choir.ExperimentConfig{
		Packets: 40_000, Runs: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	runA, runB := res.Traces[0], res.Traces[1]
	fmt.Printf("trials: %d and %d packets (%s)\n\n", runA.Len(), runB.Len(), res.Env.Name)

	// ---- Path 1: stream two pcap files in bounded memory ----
	dir, err := os.MkdirTemp("", "streaming-kappa")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	pa := filepath.Join(dir, "runA.pcap")
	pb := filepath.Join(dir, "runB.pcap")
	if err := choir.WritePcapFile(pa, runA, 0); err != nil {
		log.Fatal(err)
	}
	if err := choir.WritePcapFile(pb, runB, 0); err != nil {
		log.Fatal(err)
	}

	sa, err := choir.OpenPcapStream(pa)
	if err != nil {
		log.Fatal(err)
	}
	defer sa.Close()
	sb, err := choir.OpenPcapStream(pb)
	if err != nil {
		log.Fatal(err)
	}
	defer sb.Close()

	fmt.Println("pcap streaming, 1 ms windows:")
	sum, err := choir.StreamConsistency(sa, sb, choir.StreamConfig{
		Window:   sim.Millisecond,
		DataOnly: true,
		OnWindow: func(w choir.WindowMetrics) { fmt.Printf("  %v\n", w) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  aggregate: %v\n", sum.Aggregate)
	fmt.Printf("  memory: peak shard entries %d, peak open windows %d\n\n",
		sum.Stats.PeakShardEntries, sum.Stats.PeakOpenWindows)

	// The streaming scores are the batch scores, exactly.
	batch, err := choir.ConsistencyWindowed(runA, runB, sim.Millisecond, choir.Options{})
	if err != nil {
		log.Fatal(err)
	}
	exact := len(batch) == len(sum.Windows)
	for i := range batch {
		if !exact || batch[i].Result.Kappa != sum.Windows[i].Result.Kappa {
			exact = false
			break
		}
	}
	fmt.Printf("streaming == batch ConsistencyWindowed, window for window: %v\n\n", exact)

	// ---- Path 2: live κ through a tap, while the producer runs ----
	// In a full rig the tap is wired into the simulated testbed as a
	// receiver endpoint (it implements the NIC Endpoint interface); here
	// a goroutine plays run B into it to keep the example self-contained.
	tap := choir.NewLiveTap(256, true)
	go func() {
		for i := 0; i < runB.Len(); i++ {
			tap.Receive(runB.Packets[i], runB.Times[i])
		}
		tap.Close()
	}()

	fmt.Println("live tap vs baseline trace, 1 ms windows:")
	live, err := choir.StreamConsistency(choir.TraceSource(runA), tap, choir.StreamConfig{
		Window:   sim.Millisecond,
		DataOnly: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  aggregate: %v\n", live.Aggregate)
	fmt.Printf("  (batch whole-trial κ for reference: %.4f)\n", res.Results[0].Kappa)
}
