// Observability: the flight recorder riding along a seeded Fig 4a run.
//
// The same experiment the paper's §6.1 numbers come from is executed
// with the obs layer attached: every topology element publishes counters
// and histograms into one registry, and a 1-in-64 tag-hash sample of
// packets is traced through its whole lifecycle (gen → NIC ring → wire →
// switch → record → replay → capture) in *simulated* nanoseconds.
//
// Because instruments never touch the engine's RNG or schedule, the
// metric vector printed here is bit-identical to the same seed without
// observability (asserted by TestObsDifferential).
//
//	go run ./examples/observability
//
// The exported trace file opens directly in https://ui.perfetto.dev or
// chrome://tracing; the .prom file is a Prometheus text snapshot.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/testbed"
)

func main() {
	// Attach metrics + a packet-lifecycle tracer sampling 1-in-64 tags.
	o := obs.New().WithTracer(64)

	env := testbed.LocalSingle()
	res, err := experiments.Run(env, experiments.TrialConfig{
		Packets: 30_000, Runs: 2, Seed: 1, Obs: o,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("environment: %s — recorded %d packets, %d replay trials\n",
		env.Name, res.Recorded, len(res.Traces))
	m := res.Mean
	fmt.Printf("mean metrics: I=%.4f L=%.3g κ=%.4f (bit-identical with obs off)\n\n", m.I, m.L, m.Kappa)

	// The registry now holds the run's telemetry; print the summary table
	// the CLIs show with -metrics/-trace/-pprof.
	fmt.Println(obs.SummaryTable(o.Reg).String())

	// The tracer carries one coherent storyline per sampled packet.
	fmt.Printf("\n%s\n", o.Tracer.String())
	fmt.Println("lifecycle events by stage:")
	for _, line := range stageBreakdown(o.Tracer) {
		fmt.Printf("  %s\n", line)
	}

	// Export both artifacts the way `-metrics FILE -trace FILE` would.
	dir, err := os.MkdirTemp("", "choir-obs-")
	if err != nil {
		log.Fatal(err)
	}
	promPath := filepath.Join(dir, "fig4a.prom")
	tracePath := filepath.Join(dir, "fig4a.trace.json")
	writeTo(promPath, func(f *os.File) error { return o.Reg.WritePrometheus(f) })
	writeTo(tracePath, func(f *os.File) error { return o.Tracer.WriteJSON(f) })
	fmt.Printf("\nwrote %s (Prometheus text)\n", promPath)
	fmt.Printf("wrote %s (open in ui.perfetto.dev)\n", tracePath)
}

// stageBreakdown decodes the trace export and counts events per stage —
// the storyline a Perfetto timeline shows visually.
func stageBreakdown(tr *obs.Tracer) []string {
	pr, pw, err := os.Pipe()
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		_ = tr.WriteJSON(pw)
		pw.Close()
	}()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(pr).Decode(&doc); err != nil {
		log.Fatal(err)
	}
	counts := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue // process/thread metadata
		}
		counts[ev.Name]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%-10s %6d", n, counts[n])
	}
	return out
}

func writeTo(path string, fill func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := fill(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
