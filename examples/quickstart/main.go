// Quickstart: record a traffic window through a Choir middlebox on the
// simulated local testbed, replay it three times, and score how
// consistent the replays are with the paper's κ metric.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/choir"
)

func main() {
	// The paper's §6.1 environment: bare-metal ConnectX-5 NICs through
	// a Tofino2 switch, one replayer, 40 Gbps of 1400-byte packets.
	env := choir.LocalSingle()
	fmt.Printf("environment: %s\n  %s\n\n", env.Name, env.Description)

	// Record 50k packets, then run three replay trials (A, B, C).
	res, err := choir.RunExperiment(env, choir.ExperimentConfig{
		Packets: 50_000,
		Runs:    3,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recorded %d packets into the middlebox replay buffer\n", res.Recorded)
	fmt.Printf("captured %d trials at the recorder\n\n", len(res.Traces))

	// Each later run is compared against baseline run A using the four
	// normalized variation metrics and the compound score κ (Eq. 1-5).
	for i, r := range res.Results {
		fmt.Printf("run %c vs A:  U=%.3g  O=%.3g  I=%.4f  L=%.3g  κ=%.4f\n",
			'B'+byte(i), r.U, r.O, r.I, r.L, r.Kappa)
	}
	fmt.Printf("\nmean κ = %.4f — the local testbed replays near-identically,\n", res.Mean.Kappa)
	fmt.Println("matching the paper's ~0.985 for this environment.")

	// The same metric works on any two traces, e.g. straight from pcap:
	a, b := res.Traces[0], res.Traces[1]
	m, err := choir.Consistency(a, b, choir.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndirect Consistency(A, B): κ = %.4f (same computation, library form)\n", m.Kappa)
}
