// FABRIC slice workflow: build the paper's three-VM topology through
// the FABlib-style management API (paper §2.1), submit it against a
// federation with finite per-site inventories, and run the consistency
// experiment on the environment the slice instantiates. Site
// utilization feeds the virtualization-noise model, so the same slice
// on a busier site measures as less consistent.
//
//	go run ./examples/fabric_slice
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/fabric"
)

func main() {
	fed := fabric.DefaultFederation()
	fmt.Println("federation sites:", fed.SiteNames())

	site, err := fed.LeastUtilizedSite(true /* require PTP */)
	if err != nil {
		log.Fatal(err)
	}
	spec := site.Spec()
	fmt.Printf("selected %s: %d cores, %d GiB RAM, PTP=%v, utilization %.1f%%\n\n",
		spec.Name, spec.Cores, spec.RAMGiB, spec.PTP, site.Utilization()*100)

	slice := fed.NewSlice("choir-demo")
	gen, _ := slice.AddNode("generator", spec.Name, 4, 16, 100)
	rep, _ := slice.AddNode("replayer", spec.Name, 4, 16, 100)
	rec, _ := slice.AddNode("recorder", spec.Name, 4, 16, 100)
	gi, _ := gen.AddNIC("gen-nic", fabric.DedicatedConnectX6)
	ri, _ := rep.AddNIC("rep-nic", fabric.DedicatedConnectX6)
	ci, _ := rec.AddNIC("rec-nic", fabric.DedicatedConnectX6)
	if _, err := slice.AddService("net", fabric.L2Bridge, gi, ri, ci); err != nil {
		log.Fatal(err)
	}
	if err := slice.Submit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice %q submitted (%v); site utilization now %.1f%%\n",
		slice.Name, slice.State(), site.Utilization()*100)

	env, err := slice.Environment(fabric.ExperimentPlan{
		Generator: "generator", Recorder: "recorder", Replayers: []string{"replayer"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instantiated environment: %s\n\n", env.Name)

	res, err := experiments.Run(env, experiments.TrialConfig{Packets: 40_000, Runs: 3, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res.Results {
		fmt.Printf("run %s vs A: I=%.4f L=%.3g κ=%.4f\n",
			experiments.RunNames[i+1], r.I, r.L, r.Kappa)
	}
	m := res.Mean
	fmt.Printf("\nmean κ = %.4f — a dedicated-NIC FABRIC slice on a quiet site\n", m.Kappa)
	fmt.Println("(the paper's Table 2 row for this setting: κ ≈ 0.74)")

	if err := slice.Delete(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nslice deleted; site utilization back to %.1f%%\n", site.Utilization()*100)
}
