// Debugging: the interactive primitives Choir's in-situ design enables
// (paper §1: "a foundation for more interactive debugging primitives,
// such as breakpointing and backtracing").
//
// A watcher taps the recorder link with a breakpoint predicate; when the
// packet of interest passes, it snapshots the traffic window around it.
// A backtracer then maps that packet back to its recorded burst inside
// the middlebox — which burst, which position, which TSC instant.
//
//	go run ./examples/debugging
package main

import (
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/debug"
	"repro/internal/gen"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine(1)
	perfect := nic.Profile{Name: "100G", LineRateBps: packet.Gbps(100)}

	// generator → middlebox → watcher → recorder
	genQ := nic.New(eng, perfect, "gen").NewQueue(0)
	mbQ := nic.New(eng, perfect, "mb").NewQueue(0)
	mb := core.New(eng, core.Config{
		ID: 1, TSC: clock.NewTSC(2.5e9, 0, 0), Wall: clock.NewSystemClock(0), Out: mbQ,
	})
	genQ.Connect(mb, 0)
	rec := core.NewRecorder(eng, "A", nic.PerfectTimestamper{}, true)

	// Breakpoint: fire on packet #7777 and capture 4 packets around it.
	watcher := &debug.Watcher{
		Next:    rec,
		Window:  4,
		MaxHits: 1,
		Match: func(p *packet.Packet, _ sim.Time) bool {
			return p.Tag.Seq == 7777
		},
	}
	mbQ.Connect(watcher, 0)

	// Record 20k packets of 40 Gbps traffic.
	bus := control.NewBus(eng, nil)
	bus.Send(mb, control.StartRecord{At: 0})
	gen.StartCBR(eng, genQ, gen.CBRConfig{
		RateBps: packet.Gbps(40), FrameLen: 1400, Count: 20_000,
		Flow: packet.FiveTuple{Src: packet.IPForNode(1), Dst: packet.IPForNode(2), Proto: packet.ProtoUDP},
	})
	eng.Run()
	watcher.Flush()

	hits := watcher.Hits()
	if len(hits) != 1 {
		log.Fatalf("breakpoint fired %d times", len(hits))
	}
	h := hits[0]
	fmt.Printf("breakpoint hit: packet %v at t=%v\n", h.Packet.Tag, h.At)
	fmt.Printf("  %d packets before, %d after captured\n", len(h.Before), len(h.After))
	fmt.Printf("  window: %v .. %v\n\n", h.Before[0].Tag, h.After[len(h.After)-1].Tag)

	// Backtrace the hit into the middlebox's replay buffer.
	bt := debug.NewBacktracer(mb)
	origin, ok := bt.Trace(h.Packet.Tag)
	if !ok {
		log.Fatal("packet not found in the recording")
	}
	fmt.Printf("backtrace: packet %v was recorded in %v\n", h.Packet.Tag, origin)
	fmt.Printf("  in-burst neighbours: %v ← packet → %v\n", origin.Before, origin.After)
	fmt.Printf("  (%d packets indexed across %d bursts)\n", bt.Packets(), mb.RecordedBursts())
}
