// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md §4 maps ids to paper artifacts). Each benchmark
// runs the full record-and-replay protocol at a scaled packet count and
// reports the resulting consistency metrics as custom benchmark metrics,
// so `go test -bench=.` doubles as the reproduction harness:
//
//	κ           compound consistency score (paper Table 2)
//	I×1e3       inter-arrival-time variation, scaled for readability
//	within10%%   packets with |IAT delta| ≤ 10 ns
//
// Use cmd/experiments -full for paper-scale (1.05M packet) runs.
package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// benchScale keeps each protocol run around a second; the metric shapes
// are stable from ~30k packets up.
const benchScale = 40_000

func runEnv(b *testing.B, env testbed.Env) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(env, experiments.TrialConfig{
			Packets: benchScale, Runs: 3, Seed: int64(i + 1), KeepDeltas: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		m := res.Mean
		b.ReportMetric(m.Kappa, "κ")
		b.ReportMetric(m.I*1e3, "I×1e3")
		b.ReportMetric(m.O*1e3, "O×1e3")
		b.ReportMetric(m.U*1e6, "U×1e6")
		var within float64
		for _, r := range res.Results {
			within += r.PctIATWithin10
		}
		b.ReportMetric(within/float64(len(res.Results)), "within10%")
	}
}

// BenchmarkFig4LocalSingle regenerates Figures 4a/4b and the §6.1
// metrics (paper: κ≈0.985, I≈0.029, ~92% within ±10 ns).
func BenchmarkFig4LocalSingle(b *testing.B) { runEnv(b, testbed.LocalSingle()) }

// BenchmarkFig5LocalDual regenerates Figure 5 and the §6.2 metrics
// (paper: κ≈0.928, substantial reordering).
func BenchmarkFig5LocalDual(b *testing.B) { runEnv(b, testbed.LocalDual()) }

// BenchmarkTable1EditScript regenerates Table 1: the move-distance
// summary of the dual-replayer edit scripts (paper: ~49.8% of packets
// moved, as whole bursts).
func BenchmarkTable1EditScript(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(testbed.LocalDual(), experiments.TrialConfig{
			Packets: benchScale, Runs: 2, Seed: int64(i + 1), KeepDeltas: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		r := res.Results[0]
		s := r.MoveSummary()
		b.ReportMetric(r.MovedFraction()*100, "moved%")
		b.ReportMetric(s.AbsMean, "absMeanMove")
	}
}

// BenchmarkFig6FabricDedicated40 regenerates Figure 6 (paper: I≈0.50,
// κ≈0.74, 30–48% within ±10 ns).
func BenchmarkFig6FabricDedicated40(b *testing.B) { runEnv(b, testbed.FabricDedicated40()) }

// BenchmarkFig7FabricShared40 regenerates Figure 7 (paper: I≈0.066,
// κ≈0.967, 26–29% within ±10 ns).
func BenchmarkFig7FabricShared40(b *testing.B) { runEnv(b, testbed.FabricShared40()) }

// BenchmarkFig8FabricDedicated40Rerun regenerates Figure 8, the rerun
// with larger latency offsets (paper: L≈4.2e-4, κ≈0.75).
func BenchmarkFig8FabricDedicated40Rerun(b *testing.B) { runEnv(b, testbed.FabricDedicated40Second()) }

// BenchmarkFig9FabricDedicated80 regenerates Figure 9a (paper: I≈0.107,
// κ≈0.946).
func BenchmarkFig9FabricDedicated80(b *testing.B) { runEnv(b, testbed.FabricDedicated80()) }

// BenchmarkFig9FabricShared80 regenerates Figure 9b (paper: I≈0.111,
// κ≈0.945 — nearly identical to dedicated at 80 Gbps).
func BenchmarkFig9FabricShared80(b *testing.B) { runEnv(b, testbed.FabricShared80()) }

// BenchmarkNoiseDedicated80 regenerates the §7.1 dedicated-NIC noise
// run (paper: almost identical to the quiet 80 Gbps test).
func BenchmarkNoiseDedicated80(b *testing.B) { runEnv(b, testbed.FabricDedicated80Noisy()) }

// BenchmarkFig10FabricSharedNoisy regenerates Figure 10 (paper: I≈0.50,
// κ≈0.749, first non-zero U from drops).
func BenchmarkFig10FabricSharedNoisy(b *testing.B) { runEnv(b, testbed.FabricShared40Noisy()) }

// BenchmarkTable2AllEnvironments regenerates Table 2: one mean-κ row
// per environment, reported as κ:<row> metrics in env order.
func BenchmarkTable2AllEnvironments(b *testing.B) {
	envs := testbed.AllEnvironments()
	for i := 0; i < b.N; i++ {
		for row, env := range envs {
			res, err := experiments.Run(env, experiments.TrialConfig{
				Packets: benchScale / 2, Runs: 2, Seed: int64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			unit := strings.ReplaceAll(testbed.AllEnvironments()[row].Name, " ", "_") + "/κ"
			b.ReportMetric(res.Mean.Kappa, unit)
		}
	}
}

// BenchmarkReplayerThroughput100G verifies the paper's headline
// capability: the replay path sustains 100 Gbps (8.9 Mpps of 1400-byte
// frames) — §10.
func BenchmarkReplayerThroughput100G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(int64(i + 1))
		n := nic.New(eng, nic.Profile{Name: "100G", LineRateBps: packet.Gbps(100)}, "tput")
		q := n.NewQueue(1 << 20)
		sink := &countingSink{}
		q.Connect(sink, 0)
		const horizon = 20 * sim.Millisecond
		pkts := 0
		for pkts < 200_000 {
			burst := make([]*packet.Packet, nic.BurstSize)
			for j := range burst {
				burst[j] = &packet.Packet{Tag: packet.Tag{Seq: uint64(pkts + j)}, FrameLen: 1400}
			}
			q.SendBurst(burst)
			pkts += nic.BurstSize
		}
		eng.RunUntil(horizon)
		mpps := float64(sink.n) / horizon.Seconds() / 1e6
		b.ReportMetric(mpps, "Mpps")
		if mpps < 8.7 {
			b.Fatalf("replay path sustained only %.2f Mpps", mpps)
		}
	}
}

type countingSink struct{ n int }

func (c *countingSink) Receive(*packet.Packet, sim.Time) { c.n++ }

// BenchmarkBaselineComparison regenerates the §9 comparison: fidelity
// and co-tenant impact of Choir vs tcpreplay vs MoonGen on a shared VF.
func BenchmarkBaselineComparison(b *testing.B) {
	prof := nic.Profile{Name: "shared", LineRateBps: packet.Gbps(100), PacketInterleave: true}
	for i := 0; i < b.N; i++ {
		res, err := baseline.Compare(baseline.DefaultSet(), prof,
			baseline.CompareConfig{Packets: 10_000, Shared: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			b.ReportMetric(r.FidelityI*1e3, r.Strategy+"/I×1e3")
			b.ReportMetric(r.NoiseThroughputGbps, r.Strategy+"/cotenantGbps")
		}
	}
}

// BenchmarkMetricsCompare measures the analyzer itself: O(n log n)
// metric computation over million-packet traces is what makes the
// paper's post-processing tractable.
func BenchmarkMetricsCompare(b *testing.B) {
	const n = 200_000
	mk := func(seed int64) *trace.Trace {
		eng := sim.NewEngine(seed)
		rng := eng.Rand("bench")
		tr := trace.New("t", n)
		at := sim.Time(0)
		for i := 0; i < n; i++ {
			at += 284 + sim.Duration(rng.Int63n(20))
			tr.Append(&packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: 1400}, at)
		}
		return tr
	}
	a, c := mk(1), mk(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Compare(a, c, metrics.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "packets")
}

// BenchmarkTable2AllEnvironmentsParallel sweeps the trial scheduler
// width over the Table 2 fan-out (nine environments per op). The
// workers=1 sub-benchmark is the sequential baseline the BENCH_PR3.json
// speedups divide by; on multi-core hosts the wider widths shrink
// wall-clock while producing bit-identical rows (differential tests
// assert the identity).
func BenchmarkTable2AllEnvironmentsParallel(b *testing.B) {
	envs := testbed.AllEnvironments()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := parallel.New(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inner := experiments.TrialConfig{Packets: benchScale / 2, Runs: 2, Seed: int64(i + 1)}
				kappas := make([]float64, len(envs))
				if err := pool.Do(len(envs), func(row int) error {
					res, err := experiments.Run(envs[row], inner)
					if err != nil {
						return err
					}
					kappas[row] = res.Mean.Kappa
					return nil
				}); err != nil {
					b.Fatal(err)
				}
				for row, k := range kappas {
					if k <= 0 || k > 1 {
						b.Fatalf("row %d (%s): κ=%v out of range", row, envs[row].Name, k)
					}
				}
			}
		})
	}
}
