package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// checkGolden byte-compares got against testdata/golden/<name>, or
// rewrites the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run go test -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// runCLI invokes the command in-process and returns stdout; stderr (the
// wall-clock-dependent scheduler/telemetry diagnostics) is swallowed —
// only stdout is contractually deterministic.
func runCLI(t *testing.T, args ...string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.Bytes()
}

// TestGoldenList pins the artifact index.
func TestGoldenList(t *testing.T) {
	checkGolden(t, "list.txt", runCLI(t, "-list"))
}

// TestGoldenTable2 pins the scaled-down Table 2 text byte-for-byte: the
// whole pipeline — testbed synthesis, replay simulation, §3 metrics,
// table rendering — is deterministic in (-packets, -runs, -seed).
func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2.txt",
		runCLI(t, "-run", "table2", "-packets", "1500", "-runs", "2", "-seed", "7", "-workers", "3"))
}

// TestGoldenFig9 pins the scaled-down Figure 9 artifact — the paper's
// κ-degradation figure that cmd/faultsweep reproduces qualitatively from
// the fault layer; this golden is its full-simulation counterpart.
func TestGoldenFig9(t *testing.T) {
	checkGolden(t, "fig9.txt",
		runCLI(t, "-run", "fig9", "-packets", "1200", "-runs", "2", "-seed", "7", "-workers", "2"))
}

// TestStdoutIndependentOfWorkers: the PR 3 contract, held at the CLI
// boundary — scheduler width changes wall-clock, never bytes. (Width 3
// is pinned by the golden above; width 1 must match it.)
func TestStdoutIndependentOfWorkers(t *testing.T) {
	wide := runCLI(t, "-run", "table2", "-packets", "1500", "-runs", "2", "-seed", "7", "-workers", "3")
	narrow := runCLI(t, "-run", "table2", "-packets", "1500", "-runs", "2", "-seed", "7", "-workers", "1")
	if !bytes.Equal(wide, narrow) {
		t.Fatalf("stdout depends on -workers:\n--- workers=3 ---\n%s\n--- workers=1 ---\n%s", wide, narrow)
	}
}

// TestUnknownArtifactFails: a bad id is reported as an error, with
// nothing emitted on stdout.
func TestUnknownArtifactFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-run", "no-such-figure"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown artifact id did not error")
	}
	if stdout.Len() != 0 {
		t.Fatalf("failed run wrote to stdout: %q", stdout.String())
	}
}

// campaignArgs returns the flags for a small two-condition campaign
// writing its journal to the given path.
func campaignArgs(journal string, extra ...string) []string {
	args := []string{
		"-campaign", "demo",
		"-journal", journal,
		"-envs", "Local Single-Replayer",
		"-conditions", "clean;drop=0.02,jitter=2e3",
		"-reps", "2", "-packets", "1000", "-runs", "2", "-seed", "7",
	}
	return append(args, extra...)
}

// TestGoldenCampaign pins the campaign table rendered by an
// uninterrupted run.
func TestGoldenCampaign(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "demo.journal")
	checkGolden(t, "campaign.txt", runCLI(t, campaignArgs(journal)...))
}

// TestCampaignResumeByteIdenticalCLI: checkpoint the campaign after
// every single trial and resume until it completes; stdout must be
// byte-identical to the uninterrupted golden run.
func TestCampaignResumeByteIdenticalCLI(t *testing.T) {
	dir := t.TempDir()
	full := runCLI(t, campaignArgs(filepath.Join(dir, "full.journal"))...)

	journal := filepath.Join(dir, "chunked.journal")
	out := runCLI(t, campaignArgs(journal, "-stop-after", "1")...)
	if len(out) != 0 {
		t.Fatalf("checkpointed run wrote a table:\n%s", out)
	}
	for i := 0; len(out) == 0; i++ {
		if i > 20 {
			t.Fatal("campaign never completed under -resume")
		}
		out = runCLI(t, campaignArgs(journal, "-stop-after", "1", "-resume")...)
	}
	if !bytes.Equal(out, full) {
		t.Fatalf("resumed campaign stdout differs:\n--- resumed ---\n%s--- uninterrupted ---\n%s", out, full)
	}
}

// federatedArgs returns the flags for a small federated campaign over
// the same matrix campaignArgs uses.
func federatedArgs(sites string) []string {
	return []string{
		"-federate", "-sites", sites,
		"-envs", "Local Single-Replayer",
		"-conditions", "clean;drop=0.02,jitter=2e3",
		"-reps", "2", "-packets", "1000", "-runs", "2", "-seed", "7",
	}
}

// TestFederatedStdoutIndependentOfSites: the federated campaign's
// stdout is byte-identical across site counts — the κ identity the
// federation promises, held at the experiments CLI boundary (cmd/fedsim
// golden-pins the same document and adds membership-fault injection).
func TestFederatedStdoutIndependentOfSites(t *testing.T) {
	ref := runCLI(t, federatedArgs("1")...)
	if !strings.Contains(string(ref), "Federated replay campaign") {
		t.Fatalf("federated run did not render the federation document:\n%s", ref)
	}
	for _, sites := range []string{"2", "4"} {
		if got := runCLI(t, federatedArgs(sites)...); !bytes.Equal(got, ref) {
			t.Fatalf("-federate stdout depends on -sites %s:\n--- got ---\n%s\n--- sites=1 ---\n%s", sites, got, ref)
		}
	}
}

// TestGoldenDifferentiate pins the -differentiate convenience path:
// the same verdict-table contract cmd/diffdetect carries with the full
// knob set, here driven off the artifact CLI's shared flags.
func TestGoldenDifferentiate(t *testing.T) {
	got := runCLI(t, "-differentiate", "-workload", "voip",
		"-packets", "1200", "-runs", "2", "-seed", "11", "-workers", "2")
	if !strings.Contains(string(got), "differentiation: DETECTED") {
		t.Fatalf("throttled voip not flagged:\n%s", got)
	}
	checkGolden(t, "differentiate.txt", got)
}

// TestDifferentiateNeedsWorkload: -differentiate without an app is an
// error, not a silent CBR run.
func TestDifferentiateNeedsWorkload(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-differentiate"}, &stdout, &stderr); err == nil {
		t.Fatal("-differentiate without -workload accepted")
	}
}

// TestGoldenWorkloadArtifact pins an artifact rendered from
// application traffic instead of CBR: -workload threads through the
// shared TrialConfig into every harness.
func TestGoldenWorkloadArtifact(t *testing.T) {
	checkGolden(t, "fig9_rpc.txt",
		runCLI(t, "-run", "fig9", "-workload", "rpc", "-packets", "1200", "-runs", "2", "-seed", "7", "-workers", "2"))
}

// TestCampaignJournalGuardCLI: a fresh run over an existing journal is
// refused with a pointer at -resume.
func TestCampaignJournalGuardCLI(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "guard.journal")
	runCLI(t, campaignArgs(journal)...)
	var stdout, stderr bytes.Buffer
	err := run(campaignArgs(journal), &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("clobbering an existing journal: err=%v", err)
	}
}
