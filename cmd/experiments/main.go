// Command experiments regenerates the paper's tables and figures.
//
//	experiments -run fig4a            # one artifact, scaled down
//	experiments -run all -full        # everything at paper scale (~1.05M packets)
//	experiments -list                 # artifact index
//
// Output is text: ASCII histograms for figures, aligned tables for
// tables, with the §3 metrics alongside. See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	run := flag.String("run", "all", "artifact id (see -list) or 'all'")
	sweep := flag.String("sweep", "", "run a rate sweep on this environment name instead of an artifact")
	list := flag.Bool("list", false, "list artifact ids and exit")
	full := flag.Bool("full", false, "paper scale: 0.3s recordings (~1.05M packets) and 5 runs")
	packets := flag.Int("packets", experiments.DefaultScale, "recorded packets per experiment (ignored with -full)")
	runs := flag.Int("runs", 5, "replay trials per experiment")
	seed := flag.Int64("seed", 1, "simulation seed")
	workers := flag.Int("workers", runtime.NumCPU(),
		"trial scheduler width: independent trials/windows run on this many workers (results are bit-identical to -workers 1)")
	ocli := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println("Reproducible artifacts (paper table/figure → id):")
		for _, id := range experiments.AllFigureIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	if err := ocli.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	pool := parallel.New(*workers).WithObs(ocli.Obs().Registry())
	started := time.Now()
	cfg := experiments.TrialConfig{Packets: *packets, Runs: *runs, Seed: *seed, Obs: ocli.Obs(), Pool: pool}
	if *full {
		env := testbed.LocalSingle()
		cfg.Packets = env.PacketsFor(300 * sim.Millisecond)
		cfg.Runs = 5
	}

	if *sweep != "" {
		var env testbed.Env
		found := false
		for _, e := range testbed.AllEnvironments() {
			if strings.EqualFold(e.Name, *sweep) {
				env, found = e, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown environment %q\n", *sweep)
			os.Exit(1)
		}
		rates := []float64{10, 20, 40, 60, 80, 100}
		pts, err := experiments.RateSweep(env, rates, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.SweepTable("consistency vs offered load — "+env.Name, pts))
		finishObs(ocli, pool, started)
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.AllFigureIDs()
	}
	for _, id := range ids {
		doc, err := experiments.Figure(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(doc.String())
	}
	finishObs(ocli, pool, started)
}

// finishObs prints the trial scheduler's end-of-run speedup line and the
// telemetry summary, then writes -metrics/-trace artifacts accumulated
// across every artifact run in this invocation.
func finishObs(ocli *obs.CLI, pool *parallel.Pool, started time.Time) {
	if st := pool.Stats(); st.Tasks > 0 {
		wall := time.Since(started)
		speedup := 1.0
		if wall > 0 {
			// Busy sums the host time spent inside jobs — what a
			// sequential loop would have needed for the same work.
			speedup = float64(st.Busy) / float64(wall)
			if speedup < 1 {
				speedup = 1 // scheduling overhead, not a slowdown claim
			}
		}
		fmt.Printf("scheduler: %d workers, %d jobs, %v busy over %v wall (speedup ≈ %.2fx vs sequential)\n",
			pool.Workers(), st.Tasks, st.Busy.Round(time.Millisecond), wall.Round(time.Millisecond), speedup)
	}
	if ocli.Enabled() {
		fmt.Printf("%s\n", ocli.Summary())
	}
	if err := ocli.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
