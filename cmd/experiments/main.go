// Command experiments regenerates the paper's tables and figures.
//
//	experiments -run fig4a            # one artifact, scaled down
//	experiments -run all -full        # everything at paper scale (~1.05M packets)
//	experiments -list                 # artifact index
//
// Output is text: ASCII histograms for figures, aligned tables for
// tables, with the §3 metrics alongside. See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Artifact text goes to stdout and is fully deterministic in
// (-run, -packets, -runs, -seed) — byte-identical across invocations
// and scheduler widths (golden-tested in main_test.go). Runtime
// diagnostics — the trial-scheduler speedup line and the telemetry
// summary — go to stderr, since they depend on wall-clock timing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/shaper"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runID := fs.String("run", "all", "artifact id (see -list) or 'all'")
	sweep := fs.String("sweep", "", "run a rate sweep on this environment name instead of an artifact")
	list := fs.Bool("list", false, "list artifact ids and exit")
	full := fs.Bool("full", false, "paper scale: 0.3s recordings (~1.05M packets) and 5 runs")
	packets := fs.Int("packets", experiments.DefaultScale, "recorded packets per experiment (ignored with -full)")
	runs := fs.Int("runs", 5, "replay trials per experiment")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", runtime.NumCPU(),
		"trial scheduler width: independent trials/windows run on this many workers (results are bit-identical to -workers 1)")
	simShards := fs.Int("sim-shards", 1,
		"partition each simulation across this many event domains (parallel-in-space core; results are bit-identical to -sim-shards 1)")
	camp := fs.String("campaign", "",
		"run a crash-safe resumable trial campaign under this name instead of a single artifact (reps × environments × conditions)")
	journal := fs.String("journal", "campaign.journal", "campaign journal path (checksummed append-only JSONL, fsync'd per trial)")
	resume := fs.Bool("resume", false, "replay the journal, skip completed trials, and finish the campaign")
	trialTimeout := fs.Uint64("trial-timeout", 0,
		"per-trial sim-step budget: a trial firing more simulation events than this fails deterministically (0 = unlimited)")
	retries := fs.Int("retries", 2, "retry attempts per failed trial before it is journaled as failed")
	backoff := fs.Duration("retry-backoff", 250*time.Millisecond, "host-time wait before the first retry, doubling per attempt")
	reps := fs.Int("reps", 10, "campaign repetitions per (environment, condition) cell")
	conditions := fs.String("conditions", "clean",
		"semicolon-separated noise conditions, each a fault plan spec like 'drop=0.005,jitter=2e3' ('clean' = none)")
	envNames := fs.String("envs", "", "comma-separated environment subset for the campaign (default: all)")
	stopAfter := fs.Int("stop-after", 0,
		"checkpoint the campaign after this many trials journaled by this invocation (deterministic interrupt for tests/gates; 0 = off)")
	federate := fs.Bool("federate", false,
		"run the campaign matrix as a federated replay across -sites ring-coordinated sites (see cmd/fedsim for membership-fault injection)")
	sites := fs.Int("sites", 4, "simulated replay sites for -federate (output is byte-identical across values)")
	workloadName := fs.String("workload", "",
		"replace the CBR record-phase traffic with this application model from the workload catalogue (abr, voip, rpc, web, iot)")
	differentiate := fs.Bool("differentiate", false,
		"run the traffic-differentiation detector on -workload instead of an artifact: neutral vs throttled arm, κ-component verdict table (see cmd/diffdetect for the full knob set)")
	throttleFrac := fs.Float64("throttle-frac", 0.5,
		"-differentiate bucket rate as a fraction of the workload's own offered rate")
	throttlePolice := fs.Bool("throttle-police", false, "-differentiate polices (drops) instead of shaping (delaying)")
	ocli := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "Reproducible artifacts (paper table/figure → id):")
		for _, id := range experiments.AllFigureIDs() {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		return nil
	}

	if err := ocli.Start(); err != nil {
		return err
	}
	pool := parallel.New(*workers).WithObs(ocli.Obs().Registry())
	started := time.Now()

	if *federate {
		fcfg := federation.Config{
			Sites: *sites, Reps: *reps, Packets: *packets, Runs: *runs,
			Seed: *seed, Shards: *simShards, Pool: pool, Obs: ocli.Obs(),
			Log: stderr,
		}
		var err error
		if fcfg.Envs, err = selectEnvs(*envNames); err != nil {
			return err
		}
		if fcfg.Conditions, err = parseConditions(*conditions); err != nil {
			return err
		}
		out, err := federation.Run(fcfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, out.Doc)
		return finishObs(stderr, ocli, pool, started)
	}

	if *camp != "" {
		ccfg := campaign.Config{
			Name: *camp, Reps: *reps, Packets: *packets, Runs: *runs,
			Seed: *seed, Retries: *retries, Backoff: *backoff,
			MaxSteps: *trialTimeout, Pool: pool, Obs: ocli.Obs(), Shards: *simShards,
			Log: stderr, StopAfter: *stopAfter,
		}
		var err error
		if ccfg.Envs, err = selectEnvs(*envNames); err != nil {
			return err
		}
		if ccfg.Conditions, err = parseConditions(*conditions); err != nil {
			return err
		}
		if err := runCampaign(ccfg, *journal, *resume, stdout, stderr); err != nil {
			return err
		}
		return finishObs(stderr, ocli, pool, started)
	}

	cfg := experiments.TrialConfig{Packets: *packets, Runs: *runs, Seed: *seed, Obs: ocli.Obs(), Pool: pool, Shards: *simShards, Workload: *workloadName}
	if *full {
		env := testbed.LocalSingle()
		cfg.Packets = env.PacketsFor(300 * sim.Millisecond)
		cfg.Runs = 5
	}

	if *differentiate {
		if cfg.Workload == "" {
			return fmt.Errorf("-differentiate needs -workload (abr, voip, rpc, web, iot)")
		}
		env := testbed.LocalSingle()
		if envs, err := selectEnvs(*envNames); err != nil {
			return err
		} else if len(envs) > 0 {
			env = envs[0]
		}
		res, err := experiments.Differentiate(env, experiments.DiffConfig{
			Trial:    cfg,
			Shaper:   shaper.Config{QueuePkts: 64, Police: *throttlePolice},
			RateFrac: *throttleFrac,
		})
		if err != nil {
			return err
		}
		res.Render(stdout)
		return finishObs(stderr, ocli, pool, started)
	}

	if *sweep != "" {
		var env testbed.Env
		found := false
		for _, e := range testbed.AllEnvironments() {
			if strings.EqualFold(e.Name, *sweep) {
				env, found = e, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown environment %q", *sweep)
		}
		rates := []float64{10, 20, 40, 60, 80, 100}
		pts, err := experiments.RateSweep(env, rates, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.SweepTable("consistency vs offered load — "+env.Name, pts))
		return finishObs(stderr, ocli, pool, started)
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.AllFigureIDs()
	}
	for _, id := range ids {
		doc, err := experiments.Figure(id, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, doc.String())
	}
	return finishObs(stderr, ocli, pool, started)
}

// finishObs prints the trial scheduler's end-of-run speedup line and the
// telemetry summary to stderr (they depend on wall-clock timing, unlike
// the artifact text on stdout), then writes -metrics/-trace artifacts
// accumulated across every artifact run in this invocation.
func finishObs(stderr io.Writer, ocli *obs.CLI, pool *parallel.Pool, started time.Time) error {
	if st := pool.Stats(); st.Tasks > 0 {
		wall := time.Since(started)
		speedup := 1.0
		if wall > 0 {
			// Busy sums the host time spent inside jobs — what a
			// sequential loop would have needed for the same work.
			speedup = float64(st.Busy) / float64(wall)
			if speedup < 1 {
				speedup = 1 // scheduling overhead, not a slowdown claim
			}
		}
		fmt.Fprintf(stderr, "scheduler: %d workers, %d jobs, %v busy over %v wall (speedup ≈ %.2fx vs sequential)\n",
			pool.Workers(), st.Tasks, st.Busy.Round(time.Millisecond), wall.Round(time.Millisecond), speedup)
	}
	if ocli.Enabled() {
		fmt.Fprintf(stderr, "%s\n", ocli.Summary())
	}
	return ocli.Finish()
}

// runCampaign drives the crash-safe campaign runner: SIGINT checkpoints
// cleanly (in-flight trials finish and journal, then the process exits
// without a table), and a completed matrix renders the final table on
// stdout — byte-identical no matter how many interrupt/resume cycles it
// took (golden-tested in campaign_test.go and gated in verify.sh).
func runCampaign(cfg campaign.Config, journalPath string, resume bool, stdout, stderr io.Writer) error {
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt)
	go func() {
		if _, ok := <-sigc; ok {
			fmt.Fprintln(stderr, "experiments: interrupt — checkpointing campaign (in-flight trials will finish and journal)")
			close(stop)
		}
	}()
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()

	res, err := campaign.Run(cfg, journalPath, resume, stop)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "campaign %q: %d planned, %d ok, %d failed, %d skipped via resume, %d executed here, %d retry attempts, journal %d bytes\n",
		cfg.Name, res.Planned, res.Completed, res.Failed, res.Skipped, res.Executed, res.RetriedAttempts, res.JournalBytes)
	if res.Interrupted {
		fmt.Fprintf(stderr, "campaign checkpointed before completion — rerun with -resume to finish\n")
		return nil
	}
	fmt.Fprintln(stdout, res.Doc.String())
	return nil
}

// selectEnvs resolves a comma-separated environment subset ("" = all).
func selectEnvs(names string) ([]testbed.Env, error) {
	if strings.TrimSpace(names) == "" {
		return nil, nil // campaign.Config defaults to all environments
	}
	all := testbed.AllEnvironments()
	var out []testbed.Env
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, e := range all {
			if strings.EqualFold(e.Name, name) {
				out = append(out, e)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown environment %q", name)
		}
	}
	return out, nil
}

// parseConditions parses the semicolon-separated noise-condition list;
// each condition is a fault plan spec (fault.ParsePlan) named by its
// spec text.
func parseConditions(specs string) ([]campaign.Condition, error) {
	var out []campaign.Condition
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		plan, err := fault.ParsePlan(spec)
		if err != nil {
			return nil, err
		}
		name := spec
		if plan.IsIdentity() {
			name = "clean"
		}
		out = append(out, campaign.Condition{Name: name, Plan: plan})
	}
	return out, nil
}
