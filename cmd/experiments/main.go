// Command experiments regenerates the paper's tables and figures.
//
//	experiments -run fig4a            # one artifact, scaled down
//	experiments -run all -full        # everything at paper scale (~1.05M packets)
//	experiments -list                 # artifact index
//
// Output is text: ASCII histograms for figures, aligned tables for
// tables, with the §3 metrics alongside. See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	run := flag.String("run", "all", "artifact id (see -list) or 'all'")
	sweep := flag.String("sweep", "", "run a rate sweep on this environment name instead of an artifact")
	list := flag.Bool("list", false, "list artifact ids and exit")
	full := flag.Bool("full", false, "paper scale: 0.3s recordings (~1.05M packets) and 5 runs")
	packets := flag.Int("packets", experiments.DefaultScale, "recorded packets per experiment (ignored with -full)")
	runs := flag.Int("runs", 5, "replay trials per experiment")
	seed := flag.Int64("seed", 1, "simulation seed")
	ocli := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println("Reproducible artifacts (paper table/figure → id):")
		for _, id := range experiments.AllFigureIDs() {
			fmt.Printf("  %s\n", id)
		}
		return
	}

	if err := ocli.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	cfg := experiments.TrialConfig{Packets: *packets, Runs: *runs, Seed: *seed, Obs: ocli.Obs()}
	if *full {
		env := testbed.LocalSingle()
		cfg.Packets = env.PacketsFor(300 * sim.Millisecond)
		cfg.Runs = 5
	}

	if *sweep != "" {
		var env testbed.Env
		found := false
		for _, e := range testbed.AllEnvironments() {
			if strings.EqualFold(e.Name, *sweep) {
				env, found = e, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "experiments: unknown environment %q\n", *sweep)
			os.Exit(1)
		}
		rates := []float64{10, 20, 40, 60, 80, 100}
		pts, err := experiments.RateSweep(env, rates, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(experiments.SweepTable("consistency vs offered load — "+env.Name, pts))
		finishObs(ocli)
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.AllFigureIDs()
	}
	for _, id := range ids {
		doc, err := experiments.Figure(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(doc.String())
	}
	finishObs(ocli)
}

// finishObs prints the telemetry summary and writes -metrics/-trace
// artifacts accumulated across every artifact run in this invocation.
func finishObs(ocli *obs.CLI) {
	if ocli.Enabled() {
		fmt.Printf("%s\n", ocli.Summary())
	}
	if err := ocli.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
