// Command experiments regenerates the paper's tables and figures.
//
//	experiments -run fig4a            # one artifact, scaled down
//	experiments -run all -full        # everything at paper scale (~1.05M packets)
//	experiments -list                 # artifact index
//
// Output is text: ASCII histograms for figures, aligned tables for
// tables, with the §3 metrics alongside. See EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
//
// Artifact text goes to stdout and is fully deterministic in
// (-run, -packets, -runs, -seed) — byte-identical across invocations
// and scheduler widths (golden-tested in main_test.go). Runtime
// diagnostics — the trial-scheduler speedup line and the telemetry
// summary — go to stderr, since they depend on wall-clock timing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/testbed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runID := fs.String("run", "all", "artifact id (see -list) or 'all'")
	sweep := fs.String("sweep", "", "run a rate sweep on this environment name instead of an artifact")
	list := fs.Bool("list", false, "list artifact ids and exit")
	full := fs.Bool("full", false, "paper scale: 0.3s recordings (~1.05M packets) and 5 runs")
	packets := fs.Int("packets", experiments.DefaultScale, "recorded packets per experiment (ignored with -full)")
	runs := fs.Int("runs", 5, "replay trials per experiment")
	seed := fs.Int64("seed", 1, "simulation seed")
	workers := fs.Int("workers", runtime.NumCPU(),
		"trial scheduler width: independent trials/windows run on this many workers (results are bit-identical to -workers 1)")
	ocli := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "Reproducible artifacts (paper table/figure → id):")
		for _, id := range experiments.AllFigureIDs() {
			fmt.Fprintf(stdout, "  %s\n", id)
		}
		return nil
	}

	if err := ocli.Start(); err != nil {
		return err
	}
	pool := parallel.New(*workers).WithObs(ocli.Obs().Registry())
	started := time.Now()
	cfg := experiments.TrialConfig{Packets: *packets, Runs: *runs, Seed: *seed, Obs: ocli.Obs(), Pool: pool}
	if *full {
		env := testbed.LocalSingle()
		cfg.Packets = env.PacketsFor(300 * sim.Millisecond)
		cfg.Runs = 5
	}

	if *sweep != "" {
		var env testbed.Env
		found := false
		for _, e := range testbed.AllEnvironments() {
			if strings.EqualFold(e.Name, *sweep) {
				env, found = e, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown environment %q", *sweep)
		}
		rates := []float64{10, 20, 40, 60, 80, 100}
		pts, err := experiments.RateSweep(env, rates, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.SweepTable("consistency vs offered load — "+env.Name, pts))
		return finishObs(stderr, ocli, pool, started)
	}

	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.AllFigureIDs()
	}
	for _, id := range ids {
		doc, err := experiments.Figure(id, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, doc.String())
	}
	return finishObs(stderr, ocli, pool, started)
}

// finishObs prints the trial scheduler's end-of-run speedup line and the
// telemetry summary to stderr (they depend on wall-clock timing, unlike
// the artifact text on stdout), then writes -metrics/-trace artifacts
// accumulated across every artifact run in this invocation.
func finishObs(stderr io.Writer, ocli *obs.CLI, pool *parallel.Pool, started time.Time) error {
	if st := pool.Stats(); st.Tasks > 0 {
		wall := time.Since(started)
		speedup := 1.0
		if wall > 0 {
			// Busy sums the host time spent inside jobs — what a
			// sequential loop would have needed for the same work.
			speedup = float64(st.Busy) / float64(wall)
			if speedup < 1 {
				speedup = 1 // scheduling overhead, not a slowdown claim
			}
		}
		fmt.Fprintf(stderr, "scheduler: %d workers, %d jobs, %v busy over %v wall (speedup ≈ %.2fx vs sequential)\n",
			pool.Workers(), st.Tasks, st.Busy.Round(time.Millisecond), wall.Round(time.Millisecond), speedup)
	}
	if ocli.Enabled() {
		fmt.Fprintf(stderr, "%s\n", ocli.Summary())
	}
	return ocli.Finish()
}
