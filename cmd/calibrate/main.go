// Command calibrate runs every environment at a configurable scale and
// prints the per-run and mean consistency metrics next to the paper's
// targets — the tool used to tune internal/testbed profile constants.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/testbed"
)

var targets = map[string]string{
	"Local Single-Replayer":      "I≈0.029 L≈4.3e-6 κ≈0.985 within10≈92.3%",
	"Local Dual-Replayer":        "I≈0.20 L≈9.7e-3 O≈0.026 κ≈0.928 moved≈49.8%",
	"FABRIC Dedicated 40 Gbps 1": "I≈0.50 L≈3.1e-5 κ≈0.74 within10 30-48%",
	"FABRIC Shared 40 Gbps":      "I≈0.066 L≈2.2e-5 κ≈0.967 within10 26-29%",
	"FABRIC Dedicated 40 Gbps 2": "I≈0.50 L≈4.2e-4 κ≈0.75 within10 24-27%",
	"FABRIC Dedicated 80 Gbps":   "I≈0.107 L≈8.2e-6 κ≈0.946 within10≈30.1%",
	"FABRIC Shared 80 Gbps":      "I≈0.111 L≈2.3e-5 κ≈0.945 within10≈30.2%",
	"FABRIC Ded. 80 Gbps Noisy":  "I≈0.109 L≈1.4e-5 κ≈0.946 within10 30-32%",
	"FABRIC Shd. 40 Gbps Noisy":  "I≈0.50 L≈2.0e-4 κ≈0.749 U≈2e-4 within10 9-14%",
}

func main() {
	packets := flag.Int("packets", experiments.DefaultScale, "recorded packets per experiment")
	runs := flag.Int("runs", 5, "replay trials per experiment")
	seed := flag.Int64("seed", 1, "simulation seed")
	only := flag.String("only", "", "substring filter on environment name")
	flag.Parse()

	for _, env := range testbed.AllEnvironments() {
		if *only != "" && !strings.Contains(strings.ToLower(env.Name), strings.ToLower(*only)) {
			continue
		}
		res, err := experiments.Run(env, experiments.TrialConfig{
			Packets: *packets, Runs: *runs, Seed: *seed, KeepDeltas: true,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", env.Name, err)
			os.Exit(1)
		}
		fmt.Printf("== %s (recorded %d)\n", env.Name, res.Recorded)
		fmt.Printf("   target: %s\n", targets[env.Name])
		for i, r := range res.Results {
			within := r.PctIATWithin10
			moved := r.MovedFraction() * 100
			fmt.Printf("   run %s: U=%.3g O=%.4g I=%.4g L=%.3g κ=%.4f within10=%.2f%% moved=%.1f%% missing=%d\n",
				experiments.RunNames[i+1], r.U, r.O, r.I, r.L, r.Kappa, within, moved, res.Missing[i])
			if len(r.MoveDistances) > 0 {
				s := stats.SummarizeInts(r.MoveDistances)
				fmt.Printf("          moves: %s\n", s.String())
			}
			if len(r.LatencyDeltas) > 0 {
				s := stats.SummarizeInts(r.LatencyDeltas)
				fmt.Printf("          lat Δ: absMean=%.0fns min=%.0f max=%.0f\n", s.AbsMean, s.Min, s.Max)
			}
			if len(r.IATDeltas) > 0 {
				s := stats.SummarizeInts(r.IATDeltas)
				fmt.Printf("          iat Δ: absMean=%.1fns min=%.0f max=%.0f\n", s.AbsMean, s.Min, s.Max)
			}
		}
		m := res.Mean
		fmt.Printf("   mean : U=%.3g O=%.4g I=%.4g L=%.3g κ=%.4f\n\n", m.U, m.O, m.I, m.L, m.Kappa)
	}
}
