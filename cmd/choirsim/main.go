// Command choirsim runs one end-to-end Choir experiment on a chosen
// environment and optionally exports every trial as a pcap file that
// cmd/consistency can analyze — the simulated equivalent of the paper's
// Jupyter artifact workflow.
//
//	choirsim -env "Local Single-Replayer" -packets 100000 -runs 5
//	choirsim -env "FABRIC Shared 40 Gbps" -out /tmp/choir
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/choir"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/pcap"
	"repro/internal/report"
)

func main() {
	envName := flag.String("env", "Local Single-Replayer", "environment name (see -list)")
	list := flag.Bool("list", false, "list environment names and exit")
	packets := flag.Int("packets", 100_000, "packets to record")
	runs := flag.Int("runs", 5, "replay trials")
	seed := flag.Int64("seed", 1, "simulation seed")
	simShards := flag.Int("sim-shards", 1, "partition the simulation across this many event domains (bit-identical to 1)")
	out := flag.String("out", "", "directory to write per-trial pcap files")
	snapLen := flag.Int("snaplen", 0, "pcap snap length (0 = full frames)")
	capture := flag.String("pcap", "", "replay this capture file through the environment instead of generating traffic")
	jsonOut := flag.String("json", "", "write a machine-readable result summary to this file")
	ocli := obs.BindFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, e := range choir.Environments() {
			fmt.Printf("  %-28s %s\n", e.Name, e.Description)
		}
		return
	}

	var env choir.Environment
	found := false
	for _, e := range choir.Environments() {
		if strings.EqualFold(e.Name, *envName) {
			env, found = e, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "choirsim: unknown environment %q (try -list)\n", *envName)
		os.Exit(1)
	}
	if err := ocli.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "choirsim: %v\n", err)
		os.Exit(1)
	}

	var res *choir.ExperimentResult
	var err error
	if *capture != "" {
		tr, rerr := choir.ReadCaptureFile(*capture)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "choirsim: %v\n", rerr)
			os.Exit(1)
		}
		src := tr.DataOnly().Normalize()
		fmt.Printf("replaying capture %s (%d tagged packets) through %s\n", *capture, src.Len(), env.Name)
		res, err = experiments.ReplayCapture(env, src, experiments.TrialConfig{
			Packets: 1, Runs: *runs, Seed: *seed, KeepDeltas: true, Obs: ocli.Obs(),
		})
	} else {
		res, err = choir.RunExperiment(env, choir.ExperimentConfig{
			Packets: *packets, Runs: *runs, Seed: *seed, KeepDeltas: true, Obs: ocli.Obs(),
			Shards: *simShards,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "choirsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("environment: %s\n  %s\n", env.Name, env.Description)
	fmt.Printf("recorded %d packets; %d replay trials\n\n", res.Recorded, len(res.Traces))

	tb := report.NewTable("consistency vs run A", "Run", "U", "O", "I", "L", "κ", "within ±10ns", "missing")
	for i, r := range res.Results {
		tb.AddRow(experiments.RunNames[i+1],
			report.G(r.U), report.G(r.O), report.G(r.I), report.G(r.L),
			fmt.Sprintf("%.4f", r.Kappa), report.Pct(r.PctIATWithin10),
			fmt.Sprintf("%d", res.Missing[i]))
	}
	fmt.Println(tb.String())
	m := res.Mean
	fmt.Printf("mean: U=%s O=%s I=%s L=%s κ=%.4f\n", report.G(m.U), report.G(m.O), report.G(m.I), report.G(m.L), m.Kappa)

	if ocli.Enabled() {
		fmt.Printf("\n%s", ocli.Summary())
	}

	if *jsonOut != "" {
		raw, err := json.MarshalIndent(res.Summary(), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "choirsim: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "choirsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "choirsim: %v\n", err)
			os.Exit(1)
		}
		for _, tr := range res.Traces {
			path := filepath.Join(*out, fmt.Sprintf("run-%s.pcap", tr.Name))
			if err := pcap.WriteFile(path, tr, *snapLen); err != nil {
				fmt.Fprintf(os.Stderr, "choirsim: writing %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d packets)\n", path, tr.Len())
		}
	}

	if err := ocli.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "choirsim: %v\n", err)
		os.Exit(1)
	}
}
