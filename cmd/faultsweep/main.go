// Command faultsweep drives seeded fault plans through a clean baseline
// trial and prints κ-vs-fault-intensity tables — the qualitative shape
// of the paper's Figure 9 degradation, one table per fault axis:
//
//	faultsweep                          # every axis, default intensities
//	faultsweep -axis drop -seed 7       # one axis, replayable from the seed
//	faultsweep -steps 0,0.1,0.5,1       # custom intensity grid
//
// Every number in the output derives from (-seed, -packets, -steps), so
// two invocations with the same flags are byte-identical — verify.sh
// diffs exactly that as its deterministic-replay gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/fault/harness"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "faultsweep: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("faultsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	axis := fs.String("axis", "all", "fault axis to sweep (drop, dup, corrupt, burst, reorder, jitter, skew or 'all')")
	packets := fs.Int("packets", 20000, "baseline trial length in packets")
	seed := fs.Uint64("seed", 1, "fault plan seed; the same seed always renders identical bytes")
	steps := fs.String("steps", "0,0.01,0.02,0.05,0.1,0.2,0.5,1", "comma-separated axis intensities in [0,1]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	xs, err := parseSteps(*steps)
	if err != nil {
		return err
	}
	axes := harness.Axes()
	if *axis != "all" {
		ax, ok := harness.AxisByName(*axis)
		if !ok {
			return fmt.Errorf("unknown axis %q (try drop, dup, corrupt, burst, reorder, jitter, skew)", *axis)
		}
		axes = []harness.Axis{ax}
	}

	base := harness.Baseline("baseline", *packets, *seed)
	fmt.Fprintf(stdout, "faultsweep: %d-packet baseline, seed %d — κ degradation per fault axis\n\n", *packets, *seed)
	for i, ax := range axes {
		pts, err := harness.Sweep(ax, base, *seed, xs)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		harness.RenderTable(stdout, ax, pts)
	}
	return nil
}

// parseSteps parses the comma-separated intensity grid.
func parseSteps(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	xs := make([]float64, 0, len(parts))
	for _, part := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad step %q: %w", part, err)
		}
		if x < 0 || x > 1 {
			return nil, fmt.Errorf("step %g outside [0,1]", x)
		}
		xs = append(xs, x)
	}
	return xs, nil
}
