package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// checkGolden byte-compares got against testdata/golden/<name>, or
// rewrites the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run go test -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// runCLI invokes the command in-process and returns stdout; only
// stdout is contractually deterministic.
func runCLI(t *testing.T, args ...string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.Bytes()
}

// TestGoldenList pins the workload catalogue index.
func TestGoldenList(t *testing.T) {
	checkGolden(t, "list.txt", runCLI(t, "-list"))
}

// TestGoldenShaped pins the shaping verdict: voip throttled to half
// rate through a deep queue must flag timing components.
func TestGoldenShaped(t *testing.T) {
	got := runCLI(t, "-workload", "voip", "-rate-frac", "0.5", "-queue", "4096", "-seed", "11")
	if !bytes.Contains(got, []byte("differentiation: DETECTED")) {
		t.Fatalf("shaped arm not flagged:\n%s", got)
	}
	checkGolden(t, "shaped_voip.txt", got)
}

// TestGoldenPoliced pins the policing verdict: web traffic policed to
// 40%% of its rate must show the loss signature (U flagged).
func TestGoldenPoliced(t *testing.T) {
	got := runCLI(t, "-workload", "web", "-police", "-rate-frac", "0.4", "-seed", "11")
	if !bytes.Contains(got, []byte("differentiation: DETECTED")) {
		t.Fatalf("policed arm not flagged:\n%s", got)
	}
	checkGolden(t, "policed_web.txt", got)
}

// TestGoldenNeutralControl pins the control: with no throttler the two
// arms are identical simulations and nothing may flag, for any app.
func TestGoldenNeutralControl(t *testing.T) {
	got := runCLI(t, "-workload", "all", "-neutral", "-seed", "11")
	if bytes.Contains(got, []byte("DETECTED")) {
		t.Fatalf("neutral control flagged differentiation:\n%s", got)
	}
	if n := bytes.Count(got, []byte("differentiation: none")); n != 5 {
		t.Fatalf("want 5 neutral verdicts, got %d:\n%s", n, got)
	}
	checkGolden(t, "neutral_all.txt", got)
}

// TestStdoutIndependentOfShards: the PR's headline determinism claim at
// the CLI boundary — the verdict table is byte-identical whether the
// simulation ran sequentially or partitioned across 4 event domains.
func TestStdoutIndependentOfShards(t *testing.T) {
	args := []string{"-workload", "rpc", "-rate-frac", "0.5", "-seed", "11"}
	seq := runCLI(t, args...)
	sharded := runCLI(t, append(args, "-sim-shards", "4")...)
	if !bytes.Equal(seq, sharded) {
		t.Fatalf("stdout depends on -sim-shards:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s", seq, sharded)
	}
}

// TestRerunByteIdentical: same flags, same bytes — the verify.sh gate
// held in-process.
func TestRerunByteIdentical(t *testing.T) {
	args := []string{"-workload", "iot", "-rate-frac", "0.5", "-seed", "7"}
	a := runCLI(t, args...)
	b := runCLI(t, args...)
	if !bytes.Equal(a, b) {
		t.Fatalf("rerun diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestUnknownWorkloadFails: a catalogue miss is an error naming the
// known apps, with nothing on stdout.
func TestUnknownWorkloadFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-workload", "nosuch"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "voip") {
		t.Fatalf("unknown workload: err=%v", err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("failed run wrote to stdout: %q", stdout.String())
	}
}

// TestUnknownEnvFails mirrors the environment-resolution contract.
func TestUnknownEnvFails(t *testing.T) {
	if err := run([]string{"-env", "nosuch"}, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown environment accepted")
	}
}
