// Command diffdetect runs the traffic-differentiation detector: one
// application workload from the catalogue is recorded and replayed
// twice — a neutral arm and an arm with a token bucket spliced in
// front of the capture point — and the κ components that move between
// the arms name the throttling mechanism (Wehe-style detection, but
// with the replay testbed's consistency metrics as the probe):
//
//	diffdetect                          # throttle voip to half rate
//	diffdetect -workload all -police    # police every app's traffic
//	diffdetect -workload web -neutral   # control: must report none
//
// The verdict tables on stdout are fully deterministic in the flags —
// byte-identical across reruns and across -sim-shards counts
// (golden-tested in main_test.go, gated in verify.sh). Diagnostics go
// to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/shaper"
	"repro/internal/testbed"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "diffdetect: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("diffdetect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("workload", "voip", "catalogue app to drive (see -list) or 'all'")
	envName := fs.String("env", "Local Single-Replayer", "testbed environment name")
	list := fs.Bool("list", false, "list the workload catalogue and exit")
	packets := fs.Int("packets", 1200, "recorded packets per arm")
	runs := fs.Int("runs", 2, "replay trials per arm")
	seed := fs.Int64("seed", 1, "simulation seed (both arms share it)")
	rateFrac := fs.Float64("rate-frac", 0.5,
		"throttle to this fraction of the app's own offered rate (ignored with -rate-bps)")
	rateBps := fs.Int64("rate-bps", 0, "absolute bucket rate in bits/s (overrides -rate-frac)")
	burst := fs.Int("burst", 0, "bucket burst tolerance in bytes (0 = default)")
	queue := fs.Int("queue", 64, "shaper queue depth in packets (tail-drops beyond it)")
	police := fs.Bool("police", false, "police instead of shape: drop out-of-profile packets, never delay")
	neutral := fs.Bool("neutral", false, "control experiment: no throttler in either arm — must report none")
	simShards := fs.Int("sim-shards", 1,
		"partition each simulation across this many event domains (verdicts are bit-identical to -sim-shards 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	if *list {
		fmt.Fprintln(stdout, "Workload catalogue (app — protocol/port, shape):")
		for _, name := range workload.Names() {
			a := workload.Lookup(name)
			proto := "udp"
			if a.Proto == 6 {
				proto = "tcp"
			}
			fmt.Fprintf(stdout, "  %-5s %s/%-5d %-34s %s\n", a.Name, proto, a.Port, a.Shape, a.Description)
		}
		return nil
	}

	env, err := findEnv(*envName)
	if err != nil {
		return err
	}

	apps := []string{*app}
	if *app == "all" {
		apps = workload.Names()
	}
	for i, name := range apps {
		if workload.Lookup(name) == nil {
			return fmt.Errorf("unknown workload %q (known: %s)", name, strings.Join(workload.Names(), ", "))
		}
		cfg := experiments.DiffConfig{
			Trial: experiments.TrialConfig{
				Packets: *packets, Runs: *runs, Seed: *seed,
				Workload: name, Shards: *simShards,
			},
			Shaper: shaper.Config{
				RateBps: *rateBps, BurstBytes: *burst,
				QueuePkts: *queue, Police: *police,
			},
			Neutral: *neutral,
		}
		if *rateBps <= 0 {
			cfg.RateFrac = *rateFrac
		}
		res, err := experiments.Differentiate(env, cfg)
		if err != nil {
			return err
		}
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		res.Render(stdout)
	}
	return nil
}

// findEnv resolves an environment by name, case-insensitively.
func findEnv(name string) (testbed.Env, error) {
	for _, e := range testbed.AllEnvironments() {
		if strings.EqualFold(e.Name, name) {
			return e, nil
		}
	}
	return testbed.Env{}, fmt.Errorf("unknown environment %q", name)
}
