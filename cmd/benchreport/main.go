// Command benchreport measures the PR's performance envelope and writes
// it as a machine-readable JSON artifact (BENCH_PR10.json at the repo
// root). It exercises these surfaces:
//
//   - metrics.Compare on a 200k-packet trace pair — ns/op, B/op,
//     allocs/op and pkts/s, with the pre-overhaul baseline recorded for
//     the allocation-reduction claim;
//   - the streaming κ engine (shards=4) on a 50k-packet pair;
//   - the Table 2 all-environments fan-out on the parallel trial
//     scheduler at widths 1/2/4/8, reporting wall-clock and speedup
//     versus the width-1 sequential baseline;
//   - the parallel-in-space simulation core: one experiment run with
//     its topology partitioned across 1/2/4/8 event domains, reporting
//     pkts/s and speedup versus the single-engine baseline (domains=1
//     runs the plain sequential engine) plus an identity check on the
//     resulting κ;
//   - the cross-domain handoff path (actor Send → SPSC ring →
//     Engine.Inject), reporting ns and allocs per crossing — steady
//     state must not allocate;
//   - the choird consistency service (internal/serve) under 1/8/64
//     concurrent uploading clients, reporting served-sessions/s,
//     admitted-bytes/s and the process peak RSS after each level (RSS
//     is a process-lifetime high-water mark, so the levels are
//     cumulative);
//   - the federated replay campaign (internal/federation) at 1/2/4/8
//     ring-coordinated sites over a fixed trial matrix, reporting
//     trials/s per site count plus the identity check that every
//     width rendered the byte-identical document and merged κ —
//     epoch barriers and hierarchical merging are coordination
//     overhead, so the honest claim is bounded overhead with bit
//     identity, not speedup;
//   - the application workload library (internal/workload): each
//     catalogue app emitting a fixed packet budget through a 10G NIC
//     queue into a sink, reporting emitted pkts/s of simulated
//     application traffic (model evaluation + event scheduling cost);
//   - the differentiation detector (experiments.Differentiate): one
//     neutral-vs-throttled voip pair end to end — two full
//     record/replay protocols plus the cross-arm κ decomposition —
//     reporting wall time and asserting the throttle was detected.
//
// Speedups are honest host measurements: the artifact records num_cpu
// and gomaxprocs so a single-core CI container's ~1.0x is read as what
// it is. Differential tests (internal/experiments, internal/metrics,
// internal/serve) separately prove the parallel and served results are
// bit-identical, so the numbers are free of correctness caveats on any
// host.
//
//	go run ./cmd/benchreport -out BENCH_PR10.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/federation"
	"repro/internal/metrics"
	"repro/internal/nic"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/parallel"
	"repro/internal/pcap"
	"repro/internal/psim"
	"repro/internal/serve"
	"repro/internal/shaper"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/testbed"
	"repro/internal/trace"
	"repro/internal/workload"
)

// seedAllocsPerOp and seedNsPerOp are BenchmarkMetricsCompare measured
// on the pre-overhaul tree (same 200k-packet workload, same host class):
// the scratch-arena work in internal/metrics is judged against them.
const (
	seedAllocsPerOp = 2128
	seedNsPerOp     = 192_000_000
)

type benchLine struct {
	NsPerOp     int64   `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	PktsPerSec  float64 `json:"pkts_per_sec,omitempty"`
}

type speedupLine struct {
	Workers   int     `json:"workers"`
	WallMs    float64 `json:"wall_ms"`
	BusyMs    float64 `json:"busy_ms"`
	Speedup   float64 `json:"speedup_vs_workers1"`
	KappaSum  float64 `json:"kappa_sum"` // integrity check: identical across widths
	Identical bool    `json:"identical_to_sequential"`
}

type report struct {
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`

	MetricsCompare struct {
		benchLine
		Packets           int     `json:"packets"`
		SeedAllocsPerOp   int64   `json:"seed_allocs_per_op"`
		SeedNsPerOp       int64   `json:"seed_ns_per_op"`
		AllocReductionPct float64 `json:"alloc_reduction_pct"`
		NsPerOpReduction  float64 `json:"ns_per_op_reduction_pct"`
	} `json:"metrics_compare"`

	StreamKappa struct {
		benchLine
		Packets int `json:"packets"`
		Shards  int `json:"shards"`
	} `json:"stream_kappa"`

	Table2Parallel []speedupLine `json:"table2_parallel"`

	PsimShards []psimLine `json:"psim_shards"`

	PsimHandoff struct {
		benchLine
		HandoffsPerSec float64 `json:"handoffs_per_sec"`
	} `json:"psim_handoff"`

	ChoirdService []serviceLine `json:"choird_service"`

	FederationSites []fedLine `json:"federation_sites"`

	WorkloadEmit []workloadEmitLine `json:"workload_emit"`

	DiffDetect diffDetectLine `json:"diffdetect"`
}

// workloadEmitLine is one catalogue app driving its packet budget into
// a NIC queue: the cost of simulating the application model itself.
type workloadEmitLine struct {
	App        string  `json:"app"`
	Packets    int     `json:"packets"`
	WallMs     float64 `json:"wall_ms"`
	PktsPerSec float64 `json:"pkts_per_sec"`
	// SimSeconds is how much simulated time the budget spanned — apps
	// with think times and playback buffers stretch far past wire time.
	SimSeconds float64 `json:"sim_seconds"`
}

// diffDetectLine is one end-to-end differentiation experiment: two full
// record/replay protocols (neutral and throttled arms) plus the
// cross-arm κ decomposition.
type diffDetectLine struct {
	Workload string  `json:"workload"`
	Packets  int     `json:"packets"`
	WallMs   float64 `json:"wall_ms"`
	Detected bool    `json:"detected"`
	Flagged  int     `json:"flagged_components"`
}

// fedLine is one federated campaign run at a given site count over the
// fixed matrix. Identical is the federation's contract: the rendered
// document and merged κ are byte/bit-identical to the sites=1 run.
type fedLine struct {
	Sites        int     `json:"sites"`
	Trials       int     `json:"trials"`
	Epochs       int     `json:"epochs"`
	WallMs       float64 `json:"wall_ms"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	Kappa        float64 `json:"kappa"`
	Identical    bool    `json:"identical_to_single_site"`
}

// psimLine is one experiment run with the simulated topology
// partitioned across Domains event domains. Domains=1 is the plain
// sequential engine; pkts/s counts every packet the testbed handles
// (one recording plus Runs replays). Kappa must be identical across
// rows — the sharded core's contract is bit-identity, not approximate
// equivalence.
type psimLine struct {
	Domains    int     `json:"domains"`
	WallMs     float64 `json:"wall_ms"`
	PktsPerSec float64 `json:"pkts_per_sec"`
	Speedup    float64 `json:"speedup_vs_domains1"`
	Kappa      float64 `json:"kappa"`
	Identical  bool    `json:"identical_to_sequential"`
}

// serviceLine is the service envelope at one client-concurrency level.
type serviceLine struct {
	Concurrency         int     `json:"concurrent_sessions"`
	Sessions            int     `json:"sessions"`
	WallMs              float64 `json:"wall_ms"`
	SessionsPerSec      float64 `json:"served_sessions_per_sec"`
	AdmittedBytesPerSec float64 `json:"admitted_bytes_per_sec"`
	// PeakRSSBytes is the process high-water mark measured after this
	// level completed — monotone across levels by construction.
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

func synthTrace(seed int64, n int) *trace.Trace {
	eng := sim.NewEngine(seed)
	rng := eng.Rand("benchreport")
	tr := trace.New("t", n)
	at := sim.Time(0)
	for i := 0; i < n; i++ {
		at += 284 + sim.Duration(rng.Int63n(20))
		tr.Append(&packet.Packet{Tag: packet.Tag{Seq: uint64(i)}, Kind: packet.KindData, FrameLen: 1400}, at)
	}
	return tr
}

// benchHandoff is the cross-domain handoff microbenchmark: two domains
// ping-ponging pre-bound callbacks through the router, so each op is
// one actor Send → ring push → drain → Inject → heap insert. It
// mirrors internal/psim's BenchmarkHandoff.
func benchHandoff(tb *testing.B) {
	const la = 100
	p := psim.New(1, 2, nil)
	e0, e1 := p.Domain(0), p.Domain(1)
	p.Link(e0, e1, la)
	p.Link(e1, e0, la)
	a0, a1 := e0.NewActor(), e1.NewActor()
	remaining := tb.N
	var ping, pong func()
	ping = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		a0.Send(e1, a0.Now()+la, pong)
	}
	pong = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		a1.Send(e0, a1.Now()+la, ping)
	}
	a0.Post(0, ping)
	tb.ReportAllocs()
	tb.ResetTimer()
	p.RunUntil(sim.Time(int64(tb.N+2) * la))
}

func main() {
	out := flag.String("out", "BENCH_PR10.json", "output path")
	table2Packets := flag.Int("table2-packets", 20_000, "recorded packets per Table 2 environment")
	psimPackets := flag.Int("psim-packets", 20_000, "recorded packets for the sharded-core sweep")
	fedPackets := flag.Int("fed-packets", 4000, "recorded packets per trial for the federated-sites sweep")
	flag.Parse()

	var rep report
	rep.Date = time.Now().UTC().Format(time.RFC3339)
	rep.GoVersion = runtime.Version()
	rep.NumCPU = runtime.NumCPU()
	rep.GoMaxProcs = runtime.GOMAXPROCS(0)

	// --- metrics.Compare ---
	const nCmp = 200_000
	a, b := synthTrace(1, nCmp), synthTrace(2, nCmp)
	r := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			if _, err := metrics.Compare(a, b, metrics.Options{}); err != nil {
				tb.Fatal(err)
			}
		}
	})
	rep.MetricsCompare.NsPerOp = r.NsPerOp()
	rep.MetricsCompare.BytesPerOp = r.AllocedBytesPerOp()
	rep.MetricsCompare.AllocsPerOp = r.AllocsPerOp()
	rep.MetricsCompare.PktsPerSec = float64(2*nCmp) / (float64(r.NsPerOp()) / 1e9)
	rep.MetricsCompare.Packets = nCmp
	rep.MetricsCompare.SeedAllocsPerOp = seedAllocsPerOp
	rep.MetricsCompare.SeedNsPerOp = seedNsPerOp
	rep.MetricsCompare.AllocReductionPct = 100 * (1 - float64(r.AllocsPerOp())/float64(seedAllocsPerOp))
	rep.MetricsCompare.NsPerOpReduction = 100 * (1 - float64(r.NsPerOp())/float64(seedNsPerOp))

	// --- streaming κ ---
	const nStream = 50_000
	sa, sb := synthTrace(11, nStream), synthTrace(12, nStream)
	const shards = 4
	rs := testing.Benchmark(func(tb *testing.B) {
		tb.ReportAllocs()
		for i := 0; i < tb.N; i++ {
			cfg := stream.Config{Window: 50 * sim.Microsecond, Shards: shards, DiscardWindows: true}
			sum, err := stream.Run(stream.NewTraceSource(sa), stream.NewTraceSource(sb), cfg)
			if err != nil {
				tb.Fatal(err)
			}
			if sum.Aggregate.Windows == 0 {
				tb.Fatal("no windows scored")
			}
		}
	})
	rep.StreamKappa.NsPerOp = rs.NsPerOp()
	rep.StreamKappa.BytesPerOp = rs.AllocedBytesPerOp()
	rep.StreamKappa.AllocsPerOp = rs.AllocsPerOp()
	rep.StreamKappa.PktsPerSec = float64(2*nStream) / (float64(rs.NsPerOp()) / 1e9)
	rep.StreamKappa.Packets = nStream
	rep.StreamKappa.Shards = shards

	// --- Table 2 fan-out across scheduler widths ---
	envs := testbed.AllEnvironments()
	table2 := func(workers int) (wall, busy time.Duration, kappaSum float64, err error) {
		pool := parallel.New(workers)
		cfg := experiments.TrialConfig{Packets: *table2Packets, Runs: 2, Seed: 1}
		kappas := make([]float64, len(envs))
		start := time.Now()
		err = pool.Do(len(envs), func(row int) error {
			res, rerr := experiments.Run(envs[row], cfg)
			if rerr != nil {
				return rerr
			}
			kappas[row] = res.Mean.Kappa
			return nil
		})
		wall = time.Since(start)
		busy = pool.Stats().Busy
		for _, k := range kappas {
			kappaSum += k
		}
		return
	}
	// Warm-up run so the first width doesn't pay one-time costs.
	if _, _, _, err := table2(1); err != nil {
		fatal(err)
	}
	var baseWall time.Duration
	var baseKappa float64
	for _, workers := range []int{1, 2, 4, 8} {
		wall, busy, kappaSum, err := table2(workers)
		if err != nil {
			fatal(err)
		}
		line := speedupLine{
			Workers:  workers,
			WallMs:   float64(wall.Microseconds()) / 1e3,
			BusyMs:   float64(busy.Microseconds()) / 1e3,
			KappaSum: kappaSum,
		}
		if workers == 1 {
			baseWall, baseKappa = wall, kappaSum
			line.Speedup = 1
			line.Identical = true
		} else {
			line.Speedup = float64(baseWall) / float64(wall)
			line.Identical = kappaSum == baseKappa
		}
		rep.Table2Parallel = append(rep.Table2Parallel, line)
		fmt.Fprintf(os.Stderr, "table2 workers=%d wall=%v busy=%v speedup=%.2fx identical=%v\n",
			workers, wall.Round(time.Millisecond), busy.Round(time.Millisecond), line.Speedup, line.Identical)
	}

	// --- parallel-in-space core across domain counts ---
	// One experiment, its topology partitioned across 1/2/4/8 event
	// domains. Domains=1 takes the plain sequential-engine path, so the
	// first row is the true baseline. On a single-core host the sharded
	// rows honestly report ~1.0x or below (synchronization overhead with
	// no parallel hardware); the identity column is the claim that
	// matters everywhere.
	psimEnv := testbed.LocalDual()
	psimCfg := experiments.TrialConfig{Packets: *psimPackets, Runs: 2, Seed: 1}
	psimRun := func(domains int) (time.Duration, *experiments.RunResult, error) {
		cfg := psimCfg
		if domains > 1 {
			cfg.Shards = domains
		}
		start := time.Now()
		res, err := experiments.Run(psimEnv, cfg)
		return time.Since(start), res, err
	}
	if _, _, err := psimRun(1); err != nil { // warm-up
		fatal(err)
	}
	var psimBaseWall time.Duration
	var psimBase *experiments.RunResult
	psimPkts := float64(*psimPackets * (1 + psimCfg.Runs))
	for _, domains := range []int{1, 2, 4, 8} {
		wall, res, err := psimRun(domains)
		if err != nil {
			fatal(err)
		}
		line := psimLine{
			Domains:    domains,
			WallMs:     float64(wall.Microseconds()) / 1e3,
			PktsPerSec: psimPkts / wall.Seconds(),
			Kappa:      res.Mean.Kappa,
		}
		if domains == 1 {
			psimBaseWall, psimBase = wall, res
			line.Speedup = 1
			line.Identical = true
		} else {
			line.Speedup = float64(psimBaseWall) / float64(wall)
			line.Identical = reflect.DeepEqual(res.Results, psimBase.Results) &&
				reflect.DeepEqual(res.Traces, psimBase.Traces)
			if !line.Identical {
				fatal(fmt.Errorf("sharded core domains=%d diverged from sequential", domains))
			}
		}
		rep.PsimShards = append(rep.PsimShards, line)
		fmt.Fprintf(os.Stderr, "psim domains=%d wall=%v %.0f pkts/s speedup=%.2fx identical=%v\n",
			domains, wall.Round(time.Millisecond), line.PktsPerSec, line.Speedup, line.Identical)
	}

	// --- cross-domain handoff path ---
	rh := testing.Benchmark(benchHandoff)
	rep.PsimHandoff.NsPerOp = rh.NsPerOp()
	rep.PsimHandoff.BytesPerOp = rh.AllocedBytesPerOp()
	rep.PsimHandoff.AllocsPerOp = rh.AllocsPerOp()
	rep.PsimHandoff.HandoffsPerSec = 1e9 / float64(rh.NsPerOp())
	fmt.Fprintf(os.Stderr, "psim handoff %d ns/op %d allocs/op\n", rh.NsPerOp(), rh.AllocsPerOp())
	if rh.AllocsPerOp() > 2 {
		fatal(fmt.Errorf("handoff path allocates %d allocs/op; steady state must stay at 0 (budget 2)", rh.AllocsPerOp()))
	}

	// --- federated replay across site counts ---
	// The same trial matrix executed by 1/2/4/8 ring-coordinated sites;
	// the trial pool does the actual parallel work at every width, so
	// the sweep measures federation overhead (admission, stabilization,
	// epoch barriers, hierarchical merge) against the single-site run —
	// with the bit-identity check that makes the overhead worth paying.
	fedRun := func(sites int) (time.Duration, *federation.Outcome, error) {
		cfg := federation.Config{
			Sites: sites, Reps: 4, Packets: *fedPackets, Runs: 2, Seed: 7,
			Envs: []testbed.Env{testbed.LocalSingle()},
			Conditions: []campaign.Condition{
				{Name: "clean"},
				{Name: "noisy", Plan: fault.Plan{Seed: 9, Drop: 0.02, Reorder: 0.01}},
			},
			Pool: parallel.New(runtime.NumCPU()),
		}
		start := time.Now()
		o, err := federation.Run(cfg)
		return time.Since(start), o, err
	}
	if _, _, err := fedRun(1); err != nil { // warm-up
		fatal(err)
	}
	var fedBase *federation.Outcome
	for _, sites := range []int{1, 2, 4, 8} {
		wall, o, err := fedRun(sites)
		if err != nil {
			fatal(err)
		}
		line := fedLine{
			Sites:        sites,
			Trials:       o.Trials,
			Epochs:       o.Epochs,
			WallMs:       float64(wall.Microseconds()) / 1e3,
			TrialsPerSec: float64(o.Trials) / wall.Seconds(),
			Kappa:        o.Merged.Kappa,
		}
		if sites == 1 {
			fedBase = o
			line.Identical = true
		} else {
			line.Identical = o.Doc == fedBase.Doc && o.Merged.Kappa == fedBase.Merged.Kappa
			if !line.Identical {
				fatal(fmt.Errorf("federated run sites=%d diverged from single-site", sites))
			}
		}
		rep.FederationSites = append(rep.FederationSites, line)
		fmt.Fprintf(os.Stderr, "federation sites=%d trials=%d epochs=%d wall=%v %.1f trials/s identical=%v\n",
			sites, o.Trials, o.Epochs, wall.Round(time.Millisecond), line.TrialsPerSec, line.Identical)
	}

	// --- application workload emit throughput ---
	const nEmit = 30_000
	for _, app := range workload.Names() {
		eng := sim.NewEngine(1)
		nc := nic.New(eng, nic.Profile{Name: "bench", LineRateBps: packet.Gbps(10)}, "bench")
		q := nc.NewQueue(1 << 20)
		q.Connect(devNull{}, 0)
		wr, err := workload.Start(eng, q, app, workload.Config{Count: nEmit})
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		for !wr.Done() {
			eng.RunUntil(eng.Now() + sim.Second)
		}
		wall := time.Since(start)
		line := workloadEmitLine{
			App:        app,
			Packets:    nEmit,
			WallMs:     float64(wall.Microseconds()) / 1e3,
			PktsPerSec: float64(nEmit) / wall.Seconds(),
			SimSeconds: sim.Duration(wr.FinishedAt()).Seconds(),
		}
		rep.WorkloadEmit = append(rep.WorkloadEmit, line)
		fmt.Fprintf(os.Stderr, "workload %s: %d pkts in %v host (%.0f pkts/s, %.2fs simulated)\n",
			app, nEmit, wall.Round(time.Millisecond), line.PktsPerSec, line.SimSeconds)
	}

	// --- differentiation detector end to end ---
	const nDiff = 2000
	dstart := time.Now()
	dres, err := experiments.Differentiate(testbed.LocalSingle(), experiments.DiffConfig{
		Trial:    experiments.TrialConfig{Packets: nDiff, Runs: 2, Seed: 11, Workload: "voip"},
		Shaper:   shaper.Config{QueuePkts: 64},
		RateFrac: 0.5,
	})
	if err != nil {
		fatal(err)
	}
	if !dres.Differentiated {
		fatal(fmt.Errorf("benchmark throttle went undetected: %+v", dres.Components))
	}
	dwall := time.Since(dstart)
	rep.DiffDetect.Workload = "voip"
	rep.DiffDetect.Packets = nDiff
	rep.DiffDetect.WallMs = float64(dwall.Microseconds()) / 1e3
	rep.DiffDetect.Detected = dres.Differentiated
	for _, c := range dres.Components {
		if c.Flagged {
			rep.DiffDetect.Flagged++
		}
	}
	fmt.Fprintf(os.Stderr, "diffdetect voip: %v wall, detected=%v (%d components flagged)\n",
		dwall.Round(time.Millisecond), rep.DiffDetect.Detected, rep.DiffDetect.Flagged)

	// --- choird service envelope ---
	for _, conc := range []int{1, 8, 64} {
		line, err := benchService(conc)
		if err != nil {
			fatal(err)
		}
		rep.ChoirdService = append(rep.ChoirdService, line)
		fmt.Fprintf(os.Stderr, "choird conc=%d sessions=%d wall=%.0fms %.1f sessions/s %.1f MiB/s admitted peakRSS=%.1f MiB\n",
			line.Concurrency, line.Sessions, line.WallMs, line.SessionsPerSec,
			line.AdmittedBytesPerSec/(1<<20), float64(line.PeakRSSBytes)/(1<<20))
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (metrics.Compare: %d allocs/op, −%.1f%% vs seed)\n",
		*out, rep.MetricsCompare.AllocsPerOp, rep.MetricsCompare.AllocReductionPct)
}

// benchService drives an in-process choird (internal/serve behind a
// real HTTP listener) with conc uploading clients, each posting and
// polling sessions over a 3k-packet capture pair, and reports the
// service throughput plus the process peak RSS after the level.
func benchService(conc int) (serviceLine, error) {
	var line serviceLine
	dir, err := os.MkdirTemp("", "benchreport-choird")
	if err != nil {
		return line, err
	}
	defer os.RemoveAll(dir)

	// Fixture pair on disk, then in memory for the multipart bodies.
	ta, tb := synthTrace(21, 3000), synthTrace(22, 3000)
	pa := filepath.Join(dir, "A.pcap")
	pb := filepath.Join(dir, "B.pcap")
	if err := pcap.WriteFile(pa, ta, 0); err != nil {
		return line, err
	}
	if err := pcap.WriteFile(pb, tb, 0); err != nil {
		return line, err
	}
	rawA, err := os.ReadFile(pa)
	if err != nil {
		return line, err
	}
	rawB, err := os.ReadFile(pb)
	if err != nil {
		return line, err
	}

	srv, err := serve.New(serve.Config{
		Dir:          filepath.Join(dir, "state"),
		GlobalBudget: 1 << 30,
		TenantBudget: 1 << 30,
		MaxUpload:    1 << 28,
		MaxSessions:  2 * conc,
		Window:       50 * sim.Microsecond,
	})
	if err != nil {
		return line, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := func() (*bytes.Buffer, string, error) {
		var buf bytes.Buffer
		mw := multipart.NewWriter(&buf)
		for _, p := range []struct {
			field string
			data  []byte
		}{{"a", rawA}, {"b", rawB}} {
			fw, err := mw.CreateFormFile(p.field, p.field+".pcap")
			if err != nil {
				return nil, "", err
			}
			if _, err := fw.Write(p.data); err != nil {
				return nil, "", err
			}
		}
		return &buf, mw.FormDataContentType(), mw.Close()
	}

	sessions := 4 * conc
	perClient := sessions / conc
	var admitted int64
	var mu sync.Mutex
	errCh := make(chan error, conc)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				buf, ctype, err := body()
				if err != nil {
					errCh <- err
					return
				}
				n := int64(buf.Len())
				resp, err := http.Post(ts.URL+"/v1/sessions?tenant="+tenant, ctype, buf)
				if err != nil {
					errCh <- err
					return
				}
				var v struct {
					ID string `json:"id"`
				}
				err = json.NewDecoder(resp.Body).Decode(&v)
				resp.Body.Close()
				if err != nil || v.ID == "" {
					errCh <- fmt.Errorf("upload (%s): status %d, decode %v", tenant, resp.StatusCode, err)
					return
				}
				mu.Lock()
				admitted += n
				mu.Unlock()
				for {
					r, err := http.Get(ts.URL + "/v1/sessions/" + v.ID + "/result")
					if err != nil {
						errCh <- err
						return
					}
					code := r.StatusCode
					r.Body.Close()
					if code == http.StatusOK {
						break
					}
					if code != http.StatusAccepted {
						errCh <- fmt.Errorf("session %s: HTTP %d", v.ID, code)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(fmt.Sprintf("bench%02d", c))
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errCh:
		return line, err
	default:
	}

	line.Concurrency = conc
	line.Sessions = sessions
	line.WallMs = float64(wall.Microseconds()) / 1e3
	line.SessionsPerSec = float64(sessions) / wall.Seconds()
	line.AdmittedBytesPerSec = float64(admitted) / wall.Seconds()
	line.PeakRSSBytes, _ = obs.PeakRSSBytes()
	return line, nil
}

// devNull sinks workload packets at the end of the bench NIC queue.
type devNull struct{}

func (devNull) Receive(*packet.Packet, sim.Time) {}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
	os.Exit(1)
}
