// Command notebook walks the paper's artifact workflow (Appendix A/B)
// end to end, narrating each step the Jupyter notebook performs:
//
//  1. create a FABRIC slice with three VMs and two dedicated smart NICs
//     on the least-utilized PTP-capable site,
//
//  2. record a traffic window and run replays through Choir,
//
//  3. save per-trial packet captures,
//
//  4. analyze the captures into figures and metrics.
//
//     notebook -out /tmp/choir-artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/pcap"
	"repro/internal/report"
	"repro/internal/stats"
)

func main() {
	packets := flag.Int("packets", 100_000, "packets per recording")
	runs := flag.Int("runs", 5, "replay trials")
	seed := flag.Int64("seed", 1, "simulation seed")
	out := flag.String("out", "", "directory for per-trial pcap files (optional)")
	shared := flag.Bool("shared", false, "use shared SR-IOV VFs instead of dedicated smart NICs")
	flag.Parse()

	step := func(format string, args ...interface{}) {
		fmt.Printf("==> "+format+"\n", args...)
	}

	// Step 1: provision the slice.
	step("selecting a large yet barely used PTP-capable site")
	fed := fabric.DefaultFederation()
	site, err := fed.LeastUtilizedSite(true)
	check(err)
	spec := site.Spec()
	step("site %s: %d cores, %d GiB RAM, utilization %.1f%%",
		spec.Name, spec.Cores, spec.RAMGiB, site.Utilization()*100)

	model := fabric.DedicatedConnectX6
	if *shared {
		model = fabric.SharedNIC
	}
	step("creating slice with three VMs and %v NICs", model)
	slice := fed.NewSlice("choir-artifact")
	gen, err := slice.AddNode("generator", spec.Name, 4, 16, 100)
	check(err)
	rep, err := slice.AddNode("replayer", spec.Name, 4, 16, 100)
	check(err)
	rec, err := slice.AddNode("recorder", spec.Name, 4, 16, 100)
	check(err)
	gi, err := gen.AddNIC("gen-nic", model)
	check(err)
	ri, err := rep.AddNIC("rep-nic", model)
	check(err)
	ci, err := rec.AddNIC("rec-nic", model)
	check(err)
	_, err = slice.AddService("net", fabric.L2Bridge, gi, ri, ci)
	check(err)
	check(slice.Submit())
	step("slice submitted: state=%v, site utilization now %.1f%%",
		slice.State(), site.Utilization()*100)

	// Step 2: record and replay.
	env, err := slice.Environment(fabric.ExperimentPlan{
		Generator: "generator", Recorder: "recorder", Replayers: []string{"replayer"},
	})
	check(err)
	step("instantiated environment %q, recording %d packets and running %d replays", env.Name, *packets, *runs)
	res, err := experiments.Run(env, experiments.TrialConfig{
		Packets: *packets, Runs: *runs, Seed: *seed, KeepDeltas: true,
	})
	check(err)
	step("recorded %d packets; %d trials captured", res.Recorded, len(res.Traces))

	// Step 3: save captures.
	if *out != "" {
		check(os.MkdirAll(*out, 0o755))
		for _, tr := range res.Traces {
			path := filepath.Join(*out, fmt.Sprintf("run-%s.pcap", tr.Name))
			check(pcap.WriteFile(path, tr, 0))
			step("wrote %s (%d packets)", path, tr.Len())
		}
	}

	// Step 4: analyze.
	step("analyzing captures")
	tb := report.NewTable("consistency vs run A", "Run", "U", "O", "I", "L", "κ", "within ±10ns")
	for i, r := range res.Results {
		tb.AddRow(experiments.RunNames[i+1],
			report.G(r.U), report.G(r.O), report.G(r.I), report.G(r.L),
			fmt.Sprintf("%.4f", r.Kappa), report.Pct(r.PctIATWithin10))
	}
	fmt.Println()
	fmt.Println(tb.String())
	h := stats.NewSymLogHistogram(8)
	h.AddAll(res.Results[0].IATDeltas)
	fmt.Println(h.Render("run B vs A: IAT delta (ns)", 46))
	m := res.Mean
	fmt.Printf("mean: U=%s O=%s I=%s L=%s κ=%.4f\n\n", report.G(m.U), report.G(m.O), report.G(m.I), report.G(m.L), m.Kappa)

	// Cleanup.
	check(slice.Delete())
	step("slice deleted; site utilization back to %.1f%%", site.Utilization()*100)
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "notebook: %v\n", err)
		os.Exit(1)
	}
}
