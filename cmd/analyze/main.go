// Command analyze implements the paper artifact's analysis stage: point
// it at a directory of per-trial pcap captures (as written by
// cmd/choirsim -out) and it produces the §3 metrics for every run
// against the baseline, ASCII histogram "figures", the Table 1-style
// move-distance summary, and an optional CSV dump for external
// plotting.
//
//	analyze /tmp/choir                 # run-A.pcap is the baseline
//	analyze -baseline run-C.pcap dir   # choose another baseline
//	analyze -csv out.csv dir           # histogram data as CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/metrics"
	"repro/internal/pcap"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	baseline := flag.String("baseline", "run-A.pcap", "baseline capture filename within the directory")
	csvPath := flag.String("csv", "", "write per-bucket histogram data to this CSV file")
	hist := flag.Bool("hist", true, "render ASCII histograms")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: analyze [-baseline run-A.pcap] [-csv out.csv] <capture-dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)

	entries, err := os.ReadDir(dir)
	if err != nil {
		fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".pcap") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) < 2 {
		fatal(fmt.Errorf("need at least two .pcap files in %s, found %d", dir, len(names)))
	}

	load := func(name string) *trace.Trace {
		tr, err := pcap.ReadAnyFile(filepath.Join(dir, name))
		if err != nil {
			fatal(err)
		}
		clean := tr.DataOnly().Normalize()
		clean.Name = strings.TrimSuffix(name, ".pcap")
		return clean
	}

	var base *trace.Trace
	var others []*trace.Trace
	for _, n := range names {
		if n == *baseline {
			base = load(n)
		} else {
			others = append(others, load(n))
		}
	}
	if base == nil {
		fatal(fmt.Errorf("baseline %s not found in %s", *baseline, dir))
	}

	fmt.Printf("baseline %s: %d packets over %.6fs\n\n", base.Name, base.Len(), base.Span().Seconds())

	var csv strings.Builder
	csv.WriteString("run,metric,bucket_lo,bucket_hi,count,percent\n")

	tb := report.NewTable("consistency vs "+base.Name, "Run", "U", "O", "I", "L", "κ", "within ±10ns", "moved%")
	for _, tr := range others {
		r, err := metrics.Compare(base, tr, metrics.Options{KeepDeltas: true})
		if err != nil {
			fatal(err)
		}
		tb.AddRow(tr.Name, report.G(r.U), report.G(r.O), report.G(r.I), report.G(r.L),
			fmt.Sprintf("%.4f", r.Kappa), report.Pct(r.PctIATWithin10),
			report.Pct(r.MovedFraction()*100))

		if *hist {
			hi := stats.NewSymLogHistogram(8)
			hi.AddAll(r.IATDeltas)
			fmt.Println(hi.Render(fmt.Sprintf("%s vs %s: IAT delta (ns)", tr.Name, base.Name), 46))
			hl := stats.NewSymLogHistogram(8)
			hl.AddAll(r.LatencyDeltas)
			fmt.Println(hl.Render(fmt.Sprintf("%s vs %s: latency delta (ns)", tr.Name, base.Name), 46))
		}
		if len(r.MoveDistances) > 0 {
			s := stats.SummarizeInts(r.MoveDistances)
			fmt.Printf("%s move distances: mean %.2f (σ %.2f), abs %.2f (σ %.2f), min %.0f, max %.0f\n\n",
				tr.Name, s.Mean, s.Std, s.AbsMean, s.AbsStd, s.Min, s.Max)
		}
		if *csvPath != "" {
			appendCSV(&csv, tr.Name, "iat", r.IATDeltas)
			appendCSV(&csv, tr.Name, "latency", r.LatencyDeltas)
		}
	}
	fmt.Println(tb.String())

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

func appendCSV(b *strings.Builder, run, metric string, deltas []int64) {
	h := stats.NewSymLogHistogram(8)
	h.AddAll(deltas)
	for _, bk := range h.Buckets() {
		if bk.Count == 0 {
			continue
		}
		fmt.Fprintf(b, "%s,%s,%d,%d,%d,%.6f\n", run, metric, bk.Lo, bk.Hi, bk.Count, bk.Percent)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
	os.Exit(1)
}
