// Command consistency computes the paper's §3 metrics between two pcap
// captures — the analysis half of Choir's workflow:
//
//	consistency runA.pcap runB.pcap
//	consistency -hist runA.pcap runB.pcap   # plus delta histograms
//
// Packets are matched by their 16-byte Choir trailer tag; frames
// without a valid tag (noise, truncated captures) are excluded, exactly
// like the paper's evaluation pipeline.
//
// Output is deterministic: the same pair of captures always renders
// byte-identical text (golden-tested in main_test.go).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/consistency"
)

// errUsage distinguishes bad invocations (exit 2, Unix convention) from
// runtime failures (exit 1).
var errUsage = errors.New("usage: consistency [-hist] <runA.pcap> <runB.pcap>")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "consistency: %v\n", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("consistency", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hist := fs.Bool("hist", false, "print IAT/latency delta histograms")
	within := fs.Int64("within", 10, "report percent of packets with |IAT delta| <= this many ns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errUsage
	}
	// The rendering lives in internal/consistency so the always-on
	// service (cmd/choird) serves the very same bytes for the same pair.
	return consistency.Report(stdout,
		consistency.Input{Path: fs.Arg(0), Name: fs.Arg(0)},
		consistency.Input{Path: fs.Arg(1), Name: fs.Arg(1)},
		consistency.Options{Hist: *hist, WithinNs: *within})
}
