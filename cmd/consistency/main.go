// Command consistency computes the paper's §3 metrics between two pcap
// captures — the analysis half of Choir's workflow:
//
//	consistency runA.pcap runB.pcap
//	consistency -hist runA.pcap runB.pcap   # plus delta histograms
//
// Packets are matched by their 16-byte Choir trailer tag; frames
// without a valid tag (noise, truncated captures) are excluded, exactly
// like the paper's evaluation pipeline.
//
// Output is deterministic: the same pair of captures always renders
// byte-identical text (golden-tested in main_test.go).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/metrics"
	"repro/internal/pcap"
	"repro/internal/stats"
	"repro/internal/trace"
)

// errUsage distinguishes bad invocations (exit 2, Unix convention) from
// runtime failures (exit 1).
var errUsage = errors.New("usage: consistency [-hist] <runA.pcap> <runB.pcap>")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "consistency: %v\n", err)
		if errors.Is(err, errUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("consistency", flag.ContinueOnError)
	fs.SetOutput(stderr)
	hist := fs.Bool("hist", false, "print IAT/latency delta histograms")
	within := fs.Int64("within", 10, "report percent of packets with |IAT delta| <= this many ns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return errUsage
	}

	load := func(path string) (*trace.Trace, int, error) {
		tr, err := pcap.ReadAnyFile(path)
		if err != nil {
			return nil, 0, fmt.Errorf("%s: %w", path, err)
		}
		return tr.DataOnly().Normalize(), tr.Len(), nil
	}
	a, totalA, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	b, totalB, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "trial A: %s — %d frames, %d tagged data packets, span %.6fs\n",
		fs.Arg(0), totalA, a.Len(), a.Span().Seconds())
	fmt.Fprintf(stdout, "trial B: %s — %d frames, %d tagged data packets, span %.6fs\n",
		fs.Arg(1), totalB, b.Len(), b.Span().Seconds())

	res, err := metrics.Compare(a, b, metrics.Options{KeepDeltas: true})
	if err != nil {
		return err
	}

	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "U (uniqueness) = %.6g   (%d common, %d only-A, %d only-B)\n", res.U, res.Common, res.OnlyA, res.OnlyB)
	fmt.Fprintf(stdout, "O (ordering)   = %.6g   (%d packets moved, %.1f%% of common)\n", res.O, res.MovedPackets, res.MovedFraction()*100)
	fmt.Fprintf(stdout, "L (latency)    = %.6g\n", res.L)
	fmt.Fprintf(stdout, "I (IAT)        = %.6g   (%.2f%% within ±%dns)\n", res.I, stats.PercentWithin(res.IATDeltas, *within), *within)
	fmt.Fprintf(stdout, "κ              = %.4f\n", res.Kappa)

	if *hist {
		fmt.Fprintln(stdout)
		hi := stats.NewSymLogHistogram(8)
		hi.AddAll(res.IATDeltas)
		fmt.Fprintln(stdout, hi.Render("IAT delta (ns)", 46))
		hl := stats.NewSymLogHistogram(8)
		hl.AddAll(res.LatencyDeltas)
		fmt.Fprintln(stdout, hl.Render("latency delta (ns)", 46))
	}
	return nil
}
