// Command consistency computes the paper's §3 metrics between two pcap
// captures — the analysis half of Choir's workflow:
//
//	consistency runA.pcap runB.pcap
//	consistency -hist runA.pcap runB.pcap   # plus delta histograms
//
// Packets are matched by their 16-byte Choir trailer tag; frames
// without a valid tag (noise, truncated captures) are excluded, exactly
// like the paper's evaluation pipeline.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/pcap"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	hist := flag.Bool("hist", false, "print IAT/latency delta histograms")
	within := flag.Int64("within", 10, "report percent of packets with |IAT delta| <= this many ns")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: consistency [-hist] <runA.pcap> <runB.pcap>")
		os.Exit(2)
	}

	load := func(path string) (*trace.Trace, int) {
		tr, err := pcap.ReadAnyFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "consistency: %s: %v\n", path, err)
			os.Exit(1)
		}
		return tr.DataOnly().Normalize(), tr.Len()
	}
	a, totalA := load(flag.Arg(0))
	b, totalB := load(flag.Arg(1))
	fmt.Printf("trial A: %s — %d frames, %d tagged data packets, span %.6fs\n",
		flag.Arg(0), totalA, a.Len(), a.Span().Seconds())
	fmt.Printf("trial B: %s — %d frames, %d tagged data packets, span %.6fs\n",
		flag.Arg(1), totalB, b.Len(), b.Span().Seconds())

	res, err := metrics.Compare(a, b, metrics.Options{KeepDeltas: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "consistency: %v\n", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Printf("U (uniqueness) = %.6g   (%d common, %d only-A, %d only-B)\n", res.U, res.Common, res.OnlyA, res.OnlyB)
	fmt.Printf("O (ordering)   = %.6g   (%d packets moved, %.1f%% of common)\n", res.O, res.MovedPackets, res.MovedFraction()*100)
	fmt.Printf("L (latency)    = %.6g\n", res.L)
	fmt.Printf("I (IAT)        = %.6g   (%.2f%% within ±%dns)\n", res.I, stats.PercentWithin(res.IATDeltas, *within), *within)
	fmt.Printf("κ              = %.4f\n", res.Kappa)

	if *hist {
		fmt.Println()
		hi := stats.NewSymLogHistogram(8)
		hi.AddAll(res.IATDeltas)
		fmt.Println(hi.Render("IAT delta (ns)", 46))
		hl := stats.NewSymLogHistogram(8)
		hl.AddAll(res.LatencyDeltas)
		fmt.Println(hl.Render("latency delta (ns)", 46))
	}
}
