package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/fault/harness"
	"repro/internal/pcap"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// writeFixtures materializes the deterministic capture pair the goldens
// score: a clean 3000-packet baseline and a fault-perturbed replay of it
// (drops, duplicates, reordering, jitter — every metric axis moves). The
// fixtures are rebuilt from (seed, plan) on every run, so the pcap bytes
// never need to be checked in; only the rendered text is.
func writeFixtures(t *testing.T, dir string) (pathA, pathB string) {
	t.Helper()
	base := harness.Baseline("A", 3000, 41)
	plan := fault.Plan{Seed: 42, Drop: 0.04, Dup: 0.02, Reorder: 0.05, Jitter: 300}
	perturbed := plan.Apply(base)
	perturbed.Name = "B"

	pathA = filepath.Join(dir, "runA.pcap")
	pathB = filepath.Join(dir, "runB.pcap")
	if err := pcap.WriteFile(pathA, base, 0); err != nil {
		t.Fatal(err)
	}
	if err := pcap.WriteFile(pathB, perturbed, 0); err != nil {
		t.Fatal(err)
	}
	return pathA, pathB
}

// checkGolden byte-compares got against <dir>/<name>, or rewrites the
// file under -update. dir is absolute: the caller has chdir'd away from
// the package directory by the time goldens are read.
func checkGolden(t *testing.T, dir, name string, got []byte) {
	t.Helper()
	path := filepath.Join(dir, name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run go test -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutput holds the CLI's rendered text byte-stable: same
// captures, same bytes — across runs, hosts and refactors. The perturbed
// trial comes from a seeded fault.Plan, so the goldens double as an
// end-to-end check that pcap round-tripping plus the §3 metrics respond
// to a known perturbation the way the fault layer promises.
func TestGoldenOutput(t *testing.T) {
	pkgDir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	goldenDir := filepath.Join(pkgDir, "testdata", "golden")

	dir := t.TempDir()
	writeFixtures(t, dir)
	// Relative paths keep the golden text host-independent (the CLI
	// echoes its arguments verbatim).
	t.Chdir(dir)

	cases := []struct {
		golden string
		args   []string
	}{
		{"default.txt", []string{"runA.pcap", "runB.pcap"}},
		{"hist.txt", []string{"-hist", "-within", "50", "runA.pcap", "runB.pcap"}},
		{"identity.txt", []string{"runA.pcap", "runA.pcap"}},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(tc.args, &stdout, &stderr); err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if stderr.Len() != 0 {
			t.Fatalf("%v wrote to stderr: %q", tc.args, stderr.String())
		}
		checkGolden(t, goldenDir, tc.golden, stdout.Bytes())
	}
}

// TestUsageError: wrong arity is a usage error, not a runtime failure.
func TestUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"only-one.pcap"}, &stdout, &stderr); err != errUsage {
		t.Fatalf("err = %v, want errUsage", err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("usage error wrote to stdout: %q", stdout.String())
	}
}
