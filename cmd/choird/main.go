// Command choird is the always-on consistency service: κ-scoring for a
// fleet, not a one-shot CLI. It accepts pcap uploads and live-tap
// sessions over HTTP, runs many concurrent streaming comparisons under
// per-tenant admission budgets, and serves windowed κ results that are
// byte-identical to what `consistency` prints offline for the same
// captures.
//
//	choird -addr :8432 -dir /var/lib/choird
//
//	# upload a pair, poll, fetch the report
//	curl -s -F a=@runA.pcap -F b=@runB.pcap 'http://host:8432/v1/sessions?tenant=team1'
//	curl -s http://host:8432/v1/sessions/team1-000001
//	curl -s 'http://host:8432/v1/sessions/team1-000001/result?format=consistency'
//
// SIGTERM drains gracefully: running sessions finish, queued ones stay
// journaled and re-run on the next boot to bit-identical results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "choird: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("choird", flag.ContinueOnError)
	addr := fs.String("addr", ":8432", "listen address (use :0 for an ephemeral port)")
	dir := fs.String("dir", "choird-state", "state directory (spooled captures + per-tenant journals)")
	seed := fs.Int64("seed", 1, "base seed; every session derives its own from it")
	globalBudget := fs.Int64("global-budget", 0, "global admission budget in bytes (0 = default 256 MiB)")
	tenantBudget := fs.Int64("tenant-budget", 0, "per-tenant admission budget in bytes (0 = global/4)")
	maxUpload := fs.Int64("max-upload", 0, "max bytes per capture file (0 = tenant budget/2)")
	maxSessions := fs.Int("max-sessions", 0, "max queued+running sessions (0 = 4x workers)")
	workers := fs.Int("workers", 0, "comparison concurrency (0 = GOMAXPROCS)")
	window := fs.Duration("window", 10*time.Millisecond, "default tumbling-window length")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight sessions on SIGTERM")
	faultSpec := fs.String("fault", "", "fault plan spec threaded into every session's engine (stall storms; results stay bit-identical)")
	spans := fs.Bool("spans", true, "per-session causal span tracing (GET /v1/sessions/{id}/trace; results stay bit-identical)")
	spanMax := fs.Int("span-max", 0, "max spans retained per session (0 = default)")
	quiet := fs.Bool("quiet", false, "suppress per-session lifecycle lines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		Dir:          *dir,
		Seed:         *seed,
		GlobalBudget: *globalBudget,
		TenantBudget: *tenantBudget,
		MaxUpload:    *maxUpload,
		MaxSessions:  *maxSessions,
		Workers:      *workers,
		Window:       sim.Duration(window.Nanoseconds()),
		Spans:        *spans,
		SpanMax:      *spanMax,
	}
	if !*quiet {
		cfg.Log = func(format string, a ...any) { fmt.Fprintf(stdout, "choird: "+format+"\n", a...) }
	}
	if *faultSpec != "" {
		plan, err := fault.ParsePlan(*faultSpec)
		if err != nil {
			return fmt.Errorf("-fault: %w", err)
		}
		cfg.Stall = plan.StallHook()
	}

	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The listen line is a machine-readable contract: verify.sh and the
	// bench harness parse the bound address from it.
	fmt.Fprintf(stdout, "choird: listening on http://%s (state %s)\n", ln.Addr(), *dir)

	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintf(stdout, "choird: signal received, draining (timeout %v)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil && !errors.Is(drainErr, context.DeadlineExceeded) {
		return drainErr
	}
	if drainErr != nil {
		fmt.Fprintf(stdout, "choird: drain timed out; unfinished sessions stay journaled for the next boot\n")
	} else {
		fmt.Fprintf(stdout, "choird: drained cleanly\n")
	}
	return nil
}
