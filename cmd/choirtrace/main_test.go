package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// The testdata traces are recorded from a real choird run with span
// tracing on (three sessions on one daemon: two completed uploads for
// tenants acme and globex, plus a live session whose taps never
// connected — the stalled fixture). The analyzer's output is a pure
// function of those bytes, so the goldens pin critical-path
// reconstruction byte for byte.
var fixtures = []string{
	"testdata/acme-000001.json",
	"testdata/globex-000001.json",
	"testdata/wedged-000001.json",
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run go test -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestGoldenOutput pins the analyzer's rendering of a recorded
// multi-session run: the top-N table, the verbose stage breakdown, and
// stalled-span flagging with a heartbeat below the wedged session's
// recorded age.
func TestGoldenOutput(t *testing.T) {
	cases := []struct {
		golden string
		args   []string
	}{
		{"default.txt", append([]string{"-stall", "50ms"}, fixtures...)},
		{"verbose.txt", append([]string{"-stall", "50ms", "-v"}, fixtures...)},
		{"top1.txt", append([]string{"-stall", "50ms", "-top", "1"}, fixtures...)},
	}
	for _, tc := range cases {
		var stdout, stderr bytes.Buffer
		if err := run(tc.args, &stdout, &stderr); err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if stderr.Len() != 0 {
			t.Fatalf("%v wrote to stderr: %q", tc.args, stderr.String())
		}
		checkGolden(t, tc.golden, stdout.Bytes())
	}
}

// TestCriticalPath asserts the reconstruction independent of the golden
// bytes: a completed choird session's serving path must read admission
// → spool → wal → compare (with the engine stages nested under it) →
// wal → render, in that causal order, and the wedged live session must
// be flagged stalled.
func TestCriticalPath(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(append([]string{"-stall", "50ms"}, fixtures...), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()

	var acmeLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "acme-000001") {
			acmeLine = line
			break
		}
	}
	if acmeLine == "" {
		t.Fatalf("no row for acme-000001 in:\n%s", out)
	}
	prev := -1
	for _, stage := range []string{"admission", "spool", "wal", "compare[", "ingest", "shard", "watermark", "render"} {
		i := strings.Index(acmeLine, stage)
		if i < 0 {
			t.Fatalf("stage %q missing from critical path: %s", stage, acmeLine)
		}
		if stage == "render" || stage == "admission" || stage == "spool" || stage == "compare[" {
			if i < prev {
				t.Fatalf("stage %q out of causal order in: %s", stage, acmeLine)
			}
			prev = i
		}
	}
	if !strings.Contains(out, "wedged-000001") || !strings.Contains(out, "STALLED") {
		t.Fatalf("wedged session not flagged stalled:\n%s", out)
	}
}

// TestUsageError: no input files is a usage error.
func TestUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run(nil, &stdout, &stderr); err != errUsage {
		t.Fatalf("err = %v, want errUsage", err)
	}
	if stdout.Len() != 0 {
		t.Fatalf("usage error wrote to stdout: %q", stdout.String())
	}
}
