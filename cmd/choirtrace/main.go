// Command choirtrace is the offline analyzer for causal span traces
// (internal/obs.SpanTracer exports — the bytes behind choird's
// GET /v1/sessions/{id}/trace, the obs CLI's -spans FILE, and the
// service-side /spans endpoint).
//
// Where Perfetto draws the trace, choirtrace answers the two questions
// an on-call engineer actually asks about a slow or wedged session:
//
//   - Where did the milliseconds go? For every causal tree (one tenant
//     session, one campaign trial) it reconstructs the critical path —
//     the root's stages in causal-counter order, admission → spool →
//     compare[ingest shard watermark merge] → wal → render — and prints
//     a top-N table of trees by wall time with per-stage latency.
//
//   - Is anything stuck? Spans still open at export older than the
//     heartbeat threshold (-stall) are flagged as stalled, with their
//     age and position in the tree — the signature of a wedged pipeline
//     stage or a live session whose second tap never connected.
//
// Multiple input files are analyzed together (each file is its own ID
// namespace, so per-session trace dumps from one daemon can be laid
// side by side):
//
//	choirtrace session1.json session2.json
//	choirtrace -top 5 -stall 30s -v campaign-spans.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"text/tabwriter"
	"time"
)

var errUsage = errors.New("usage: choirtrace [-top N] [-stall D] [-v] trace.json [trace2.json ...]")

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if err != errUsage {
			fmt.Fprintf(os.Stderr, "choirtrace: %v\n", err)
		} else {
			fmt.Fprintln(os.Stderr, errUsage.Error())
		}
		os.Exit(1)
	}
}

// rawEvent is one trace_event record, args left raw: packet-tracer
// events share the file and are skipped before args are decoded.
type rawEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Ts   float64         `json:"ts"`
	Dur  float64         `json:"dur"`
	Args json.RawMessage `json:"args"`
}

type traceFile struct {
	TraceEvents []rawEvent `json:"traceEvents"`
}

// span is one reconstructed node of a causal tree. Times are µs,
// file-epoch-relative, exactly as exported.
type span struct {
	id, parent, root uint64
	name             string
	ts, dur          float64
	seq0             uint64
	simNs            int64
	simSet           bool
	errText          string
	open             bool
	attrs            map[string]string
	children         []*span
}

// tree is one causal root with its fully linked span tree.
type tree struct {
	file  string
	root  *span
	spans int
	errs  int
	open  []*span
}

// label names the tree the way operators look it up: the session
// attribute (choird), the trial key (campaigns), or the root name.
func (t *tree) label() string {
	for _, key := range []string{"session", "trial"} {
		if v, ok := t.root.attrs[key]; ok {
			return v
		}
	}
	return fmt.Sprintf("%s#%d", t.root.name, t.root.id)
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("choirtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	top := fs.Int("top", 10, "show the N slowest causal trees")
	stall := fs.Duration("stall", 5*time.Second, "flag spans still open and older than this heartbeat threshold")
	verbose := fs.Bool("v", false, "per-tree stage breakdown tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() < 1 {
		return errUsage
	}

	var trees []*tree
	total, ended, openCount := 0, 0, 0
	for _, path := range fs.Args() {
		ts, err := parseFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, t := range ts {
			total += t.spans
			openCount += len(t.open)
			ended += t.spans - len(t.open)
			trees = append(trees, t)
		}
	}

	stallUS := float64(stall.Microseconds())
	var stalled []*span
	stalledIn := make(map[*span]*tree)
	for _, t := range trees {
		for _, s := range t.open {
			if s.dur > stallUS {
				stalled = append(stalled, s)
				stalledIn[s] = t
			}
		}
	}

	fmt.Fprintf(stdout, "choirtrace: %d spans in %d trees (%d ended, %d open, %d stalled > %v)\n",
		total, len(trees), ended, openCount, len(stalled), *stall)

	// Slowest trees first; label then file breaks wall-time ties so the
	// table is deterministic for any input.
	sort.SliceStable(trees, func(i, j int) bool {
		if trees[i].root.dur != trees[j].root.dur {
			return trees[i].root.dur > trees[j].root.dur
		}
		if trees[i].label() != trees[j].label() {
			return trees[i].label() < trees[j].label()
		}
		return trees[i].file < trees[j].file
	})
	shown := trees
	if *top > 0 && len(shown) > *top {
		shown = shown[:*top]
	}

	fmt.Fprintln(stdout)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, " #\tROOT\tTREE\tWALL\tSTATUS\tCRITICAL PATH")
	for i, t := range shown {
		fmt.Fprintf(tw, " %d\t%s\t%s\t%s\t%s\t%s\n",
			i+1, t.label(), t.root.name, fmtUS(t.root.dur), status(t, stallUS), pathString(t.root))
	}
	tw.Flush()

	if *verbose {
		for _, t := range shown {
			writeStages(stdout, t)
		}
	}

	if len(stalled) > 0 {
		sort.SliceStable(stalled, func(i, j int) bool {
			a, b := stalled[i], stalled[j]
			if la, lb := stalledIn[a].label(), stalledIn[b].label(); la != lb {
				return la < lb
			}
			return a.seq0 < b.seq0
		})
		fmt.Fprintf(stdout, "\nstalled spans (open > %v):\n", *stall)
		for _, s := range stalled {
			fmt.Fprintf(stdout, "  %s/%s span %016x open %s (started +%s)\n",
				stalledIn[s].label(), s.name, s.id, fmtUS(s.dur), fmtUS(s.ts))
		}
	}
	return nil
}

// parseFile loads one trace dump and links its causal trees.
func parseFile(path string) ([]*tree, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}

	byID := make(map[uint64]*span)
	var all []*span
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "span" {
			continue
		}
		var args map[string]string
		if err := json.Unmarshal(ev.Args, &args); err != nil {
			return nil, fmt.Errorf("span args: %w", err)
		}
		s := &span{name: ev.Name, ts: ev.Ts, dur: ev.Dur, attrs: args}
		var err error
		if s.id, err = strconv.ParseUint(args["span"], 16, 64); err != nil {
			return nil, fmt.Errorf("span id %q: %w", args["span"], err)
		}
		s.parent, _ = strconv.ParseUint(args["parent"], 16, 64)
		s.root, _ = strconv.ParseUint(args["root"], 16, 64)
		s.seq0, _ = strconv.ParseUint(args["seq0"], 10, 64)
		if v, ok := args["sim_ns"]; ok {
			s.simNs, _ = strconv.ParseInt(v, 10, 64)
			s.simSet = true
		}
		s.errText = args["error"]
		s.open = args["open"] == "true"
		byID[s.id] = s
		all = append(all, s)
	}

	roots := make(map[uint64]*tree)
	var order []uint64
	for _, s := range all {
		t := roots[s.root]
		if t == nil {
			t = &tree{file: filepath.Base(path)}
			roots[s.root] = t
			order = append(order, s.root)
		}
		t.spans++
		if s.errText != "" {
			t.errs++
		}
		if s.open {
			t.open = append(t.open, s)
		}
		if s.id == s.root {
			t.root = s
		} else if p := byID[s.parent]; p != nil {
			p.children = append(p.children, s)
		}
	}
	var out []*tree
	for _, id := range order {
		t := roots[id]
		if t.root == nil {
			// Root span fell to the tracer's retention cap; synthesize a
			// placeholder so orphaned children still report.
			t.root = &span{id: id, root: id, name: "(missing-root)", attrs: map[string]string{}}
		}
		sortTree(t.root)
		out = append(out, t)
	}
	return out, nil
}

// sortTree orders every child list by causal counter (allocation ID
// breaks ties) — the export is ID-sorted, but the path must follow the
// replay-clock order the spans were actually opened in.
func sortTree(s *span) {
	sort.SliceStable(s.children, func(i, j int) bool {
		if s.children[i].seq0 != s.children[j].seq0 {
			return s.children[i].seq0 < s.children[j].seq0
		}
		return s.children[i].id < s.children[j].id
	})
	for _, c := range s.children {
		sortTree(c)
	}
}

// status summarizes a tree: failed beats stalled beats open beats ok.
func status(t *tree, stallUS float64) string {
	if t.root.errText != "" {
		return "error: " + t.root.errText
	}
	for _, s := range t.open {
		if s.dur > stallUS {
			return "STALLED"
		}
	}
	if t.errs > 0 {
		return fmt.Sprintf("ok (%d span errors)", t.errs)
	}
	if len(t.open) > 0 {
		return "open"
	}
	return "ok"
}

// pathString renders the root's critical path: its direct children in
// causal order, consecutive same-name stages collapsed (spool×2), and
// one level of nesting summarized in brackets — the serving path reads
// admission → spool×2 → wal → compare[ingest×2 shard×2 watermark×9
// merge] → wal → render.
func pathString(root *span) string {
	if len(root.children) == 0 {
		return "(no stages)"
	}
	return joinStages(root.children, true)
}

// joinStages collapses a causally ordered child list into the path
// notation; nested summarizes one level of grandchildren.
func joinStages(children []*span, nested bool) string {
	out := ""
	for i := 0; i < len(children); {
		c := children[i]
		n := 1
		var sub []*span
		sub = append(sub, c.children...)
		for i+n < len(children) && children[i+n].name == c.name {
			sub = append(sub, children[i+n].children...)
			n++
		}
		if out != "" {
			out += " → "
		}
		out += c.name
		if n > 1 {
			out += fmt.Sprintf("×%d", n)
		}
		if nested && len(sub) > 0 {
			sortSpans(sub)
			out += "[" + joinStages(sub, false) + "]"
		}
		i += n
	}
	return out
}

func sortSpans(ss []*span) {
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].seq0 != ss[j].seq0 {
			return ss[i].seq0 < ss[j].seq0
		}
		return ss[i].id < ss[j].id
	})
}

// writeStages prints one tree's per-stage latency table: where the
// milliseconds of the critical path actually went.
func writeStages(w io.Writer, t *tree) {
	type stage struct {
		name          string
		count, errs   int
		total, max    float64
		first         uint64
	}
	stages := make(map[string]*stage)
	var order []string
	var walk func(s *span)
	walk = func(s *span) {
		for _, c := range s.children {
			st := stages[c.name]
			if st == nil {
				st = &stage{name: c.name, first: c.seq0}
				stages[c.name] = st
				order = append(order, c.name)
			}
			st.count++
			st.total += c.dur
			if c.dur > st.max {
				st.max = c.dur
			}
			if c.errText != "" {
				st.errs++
			}
			walk(c)
		}
	}
	walk(t.root)
	sort.SliceStable(order, func(i, j int) bool { return stages[order[i]].first < stages[order[j]].first })

	fmt.Fprintf(w, "\ntree %s (%s, wall %s):\n", t.label(), t.root.name, fmtUS(t.root.dur))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  STAGE\tCOUNT\tTOTAL\tMAX\tERRORS")
	for _, name := range order {
		st := stages[name]
		fmt.Fprintf(tw, "  %s\t%d\t%s\t%s\t%d\n", st.name, st.count, fmtUS(st.total), fmtUS(st.max), st.errs)
	}
	tw.Flush()
}

// fmtUS renders a µs quantity the way humans scan latency columns:
// three significant-ish digits, unit-scaled.
func fmtUS(us float64) string {
	switch {
	case us < 0:
		return "0µs"
	case us < 1000:
		return fmt.Sprintf("%.0fµs", us)
	case us < 1e6:
		return fmt.Sprintf("%.2fms", us/1e3)
	default:
		return fmt.Sprintf("%.3fs", us/1e6)
	}
}
