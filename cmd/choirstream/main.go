// Command choirstream computes windowed consistency metrics between two
// pcap captures in constant memory — the streaming counterpart of the
// batch `consistency` tool, built for captures too large to hold in RAM
// (or still being written by an in-progress recording):
//
//	choirstream runA.pcap runB.pcap
//	choirstream -window 1ms -windows runA.pcap runB.pcap   # per-window κ lines
//	choirstream -shards 8 -buffer 4096 big-A.pcap big-B.pcap
//	choirstream -metrics run.prom -pprof localhost:6060 A.pcap B.pcap
//
// Records are read incrementally, flow-sharded across worker goroutines,
// and scored per window as watermarks close; peak memory depends on the
// window size and shard buffers, never on the capture length. The tool
// reports throughput (pkts/s) and the process's peak RSS so the
// constant-memory claim is checkable from the outside. A capture that
// ends mid-record (still being written, or cut off) is scored up to the
// cut and flagged.
//
// With -pprof, the running whole-run κ (and the rest of the engine's
// telemetry) is scrapeable at /metrics while the comparison streams —
// `stream_running_kappa` reports the score the run would get if it
// ended now.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/stream"
)

func main() {
	window := flag.Duration("window", 10*time.Millisecond, "tumbling window length on the trial-relative timeline")
	shards := flag.Int("shards", 0, "flow shard workers (0 = GOMAXPROCS, capped at 8)")
	buffer := flag.Int("buffer", 512, "per-shard channel buffer (records)")
	maxLag := flag.Int("maxlag", 8, "max windows a source may run ahead of the close watermark")
	dataOnly := flag.Bool("data-only", true, "score only tagged data packets (the paper's tag filter)")
	perWindow := flag.Bool("windows", false, "print one line per closed window")
	ocli := obs.BindFlags(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: choirstream [flags] <runA.pcap> <runB.pcap>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := ocli.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "choirstream: %v\n", err)
		os.Exit(1)
	}

	open := func(path string) *pcap.Stream {
		s, err := pcap.OpenStream(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "choirstream: %s: %v\n", path, err)
			os.Exit(1)
		}
		return s
	}
	a := open(flag.Arg(0))
	defer a.Close()
	b := open(flag.Arg(1))
	defer b.Close()

	cfg := stream.Config{
		Window:         sim.Duration(window.Nanoseconds()),
		Shards:         *shards,
		Buffer:         *buffer,
		MaxLag:         *maxLag,
		DataOnly:       *dataOnly,
		DiscardWindows: true, // constant memory: never accumulate windows
		Obs:            ocli.Obs(),
	}
	worst := 2.0
	var worstAt sim.Time

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	cfg.OnWindow = func(w metrics.WindowResult) {
		if w.Result.Kappa < worst {
			worst, worstAt = w.Result.Kappa, w.Start
		}
		if *perWindow {
			fmt.Fprintf(out, "%v\n", w)
		}
	}

	meter := obs.StartMeter()
	sum, err := stream.Run(a, b, cfg)
	truncated := false
	if err != nil {
		if errors.Is(err, pcap.ErrTruncated) {
			truncated = true
		} else {
			fmt.Fprintf(os.Stderr, "choirstream: %v\n", err)
			os.Exit(1)
		}
	}

	out.Flush()
	total := sum.PacketsA + sum.PacketsB
	fmt.Printf("trial A: %s — %d packets\n", flag.Arg(0), sum.PacketsA)
	fmt.Printf("trial B: %s — %d packets\n", flag.Arg(1), sum.PacketsB)
	if truncated {
		fmt.Printf("warning: capture truncated mid-record; scored the prefix (%v)\n", err)
		for _, s := range []*pcap.Stream{a, b} {
			if d := s.Diag(); d.Reason != "" {
				fmt.Printf("  %s: %d records (%d bytes) scored, %d torn bytes dropped: %s\n",
					s.Name(), d.Records, d.Bytes, d.TornBytes, d.Reason)
			}
		}
	}
	fmt.Printf("aggregate: %v\n", sum.Aggregate)
	if sum.Aggregate.Windows > 0 {
		fmt.Printf("worst window: κ=%.4f at %v\n", worst, worstAt)
	}
	fmt.Printf("throughput: %s, %d shards\n", meter.ThroughputLine(total), cfgShards(cfg))
	fmt.Printf("memory: peak shard entries %d, peak open windows %d, peak RSS %s\n",
		sum.Stats.PeakShardEntries, sum.Stats.PeakOpenWindows, obs.PeakRSS())
	if ocli.Enabled() {
		// The running gauges now hold the final aggregate: cross-check
		// the whole-run κ straight from the registry, the same value a
		// mid-run /metrics scrape tracks as windows close.
		if k, ok := ocli.Obs().Registry().GaugeValue("stream_running_kappa"); ok {
			fmt.Printf("registry: stream_running_kappa=%.4f\n", k)
		}
		fmt.Printf("\n%s", ocli.Summary())
	}
	if err := ocli.Finish(); err != nil {
		fmt.Fprintf(os.Stderr, "choirstream: %v\n", err)
		os.Exit(1)
	}
}

// cfgShards reports the effective shard count after defaults.
func cfgShards(cfg stream.Config) int {
	if cfg.Shards > 0 {
		return cfg.Shards
	}
	n := runtime.GOMAXPROCS(0)
	if n > 8 {
		n = 8
	}
	return n
}
