// Command fedsim runs a federated replay campaign: N simulated sites
// coordinated by a ring-membership protocol execute the deterministic
// (environment × condition × rep) trial matrix in epochs, merge their
// κ partial sums hierarchically up the ring, and render one document.
//
//	fedsim -sites 4                               # clean federated campaign
//	fedsim -sites 4 -crash site0@1                # crash a site at the epoch-1 barrier
//	fedsim -sites 6 -partition site2@1 -heal @2   # cut a site off for one epoch
//
// The document on stdout is byte-identical across -sites and -workers —
// the federation's central identity, gated in verify.sh. Membership
// faults degrade it to annotated rows (lost / unreachable), never an
// abort. Everything N-dependent — elections, assignments, handoffs,
// the final coordinator — goes to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/testbed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "fedsim: %v\n", err)
		os.Exit(1)
	}
}

// eventFlag collects repeatable membership-fault flags ("-crash
// site0@1 -crash site2@2") into a federation schedule.
type eventFlag struct {
	kind  federation.EventKind
	sched *federation.Schedule
}

func (f eventFlag) String() string { return "" }

func (f eventFlag) Set(spec string) error {
	ev, err := federation.ParseEvent(f.kind, spec)
	if err != nil {
		return err
	}
	*f.sched = append(*f.sched, ev)
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("fedsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sites := fs.Int("sites", 4, "simulated replay sites in the ring (output is byte-identical across values)")
	succ := fs.Int("succ", 0, "ring successor-list length (0 = protocol default)")
	reps := fs.Int("reps", 2, "repetitions per (environment, condition) cell")
	packets := fs.Int("packets", 0, "recorded packets per trial (0 = default scale)")
	runs := fs.Int("runs", 3, "replay trials per experiment")
	seed := fs.Int64("seed", 1, "campaign seed")
	workers := fs.Int("workers", runtime.NumCPU(), "trial scheduler width within an epoch (bit-identical to 1)")
	simShards := fs.Int("sim-shards", 1, "event domains per simulation (bit-identical to 1)")
	envNames := fs.String("envs", "", "comma-separated environment subset (default: all)")
	conditions := fs.String("conditions", "clean",
		"semicolon-separated noise conditions, each a fault plan spec like 'drop=0.005,jitter=2e3' ('clean' = none)")
	quiet := fs.Bool("quiet", false, "suppress federation diagnostics on stderr")

	var sched federation.Schedule
	for _, ef := range []struct {
		name, usage string
		kind        federation.EventKind
	}{
		{"crash", "crash a site at an epoch barrier: site@epoch (repeatable)", federation.EventCrash},
		{"leave", "graceful leave with custody handoff: site@epoch (repeatable)", federation.EventLeave},
		{"join", "join a new site mid-campaign: site@epoch (repeatable)", federation.EventJoin},
		{"slow", "site skips stabilization steps: site@epoch:k (repeatable)", federation.EventSlow},
		{"partition", "cut a site off from the portal group: site@epoch (repeatable)", federation.EventPartition},
		{"heal", "reunite all partition groups: @epoch (repeatable)", federation.EventHeal},
	} {
		fs.Var(eventFlag{ef.kind, &sched}, ef.name, ef.usage)
	}
	ocli := obs.BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := ocli.Start(); err != nil {
		return err
	}

	cfg := federation.Config{
		Sites: *sites, SuccLen: *succ, Reps: *reps, Packets: *packets,
		Runs: *runs, Seed: *seed, Shards: *simShards, Events: sched,
		Pool: parallel.New(*workers).WithObs(ocli.Obs().Registry()),
		Obs:  ocli.Obs(),
	}
	if !*quiet {
		cfg.Log = stderr
	}
	var err error
	if cfg.Envs, err = selectEnvs(*envNames); err != nil {
		return err
	}
	if cfg.Conditions, err = parseConditions(*conditions); err != nil {
		return err
	}

	out, err := federation.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, out.Doc)
	fmt.Fprintf(stderr, "fedsim: %d trials over %d epochs, %d failed, %d lost, %d unreachable; coordinator %s, alive %s\n",
		out.Trials, out.Epochs, out.Failed, out.Lost, out.Unreachable,
		out.Coordinator, strings.Join(out.Alive, ","))
	if ocli.Enabled() {
		fmt.Fprintf(stderr, "%s\n", ocli.Summary())
	}
	return ocli.Finish()
}

// selectEnvs resolves a comma-separated environment subset ("" = all).
func selectEnvs(names string) ([]testbed.Env, error) {
	if strings.TrimSpace(names) == "" {
		return nil, nil // federation.Config defaults to all environments
	}
	all := testbed.AllEnvironments()
	var out []testbed.Env
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, e := range all {
			if strings.EqualFold(e.Name, name) {
				out = append(out, e)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown environment %q", name)
		}
	}
	return out, nil
}

// parseConditions parses the semicolon-separated noise-condition list;
// each condition is a fault plan spec (fault.ParsePlan) named by its
// spec text.
func parseConditions(specs string) ([]campaign.Condition, error) {
	var out []campaign.Condition
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		plan, err := fault.ParsePlan(spec)
		if err != nil {
			return nil, err
		}
		name := spec
		if plan.IsIdentity() {
			name = "clean"
		}
		out = append(out, campaign.Condition{Name: name, Plan: plan})
	}
	return out, nil
}
