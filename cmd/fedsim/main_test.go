package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// checkGolden byte-compares got against testdata/golden/<name>, or
// rewrites the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden missing (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run go test -update if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// runCLI invokes the command in-process and returns stdout; stderr (the
// N-dependent federation diagnostics) is swallowed — only stdout is
// contractually deterministic.
func runCLI(t *testing.T, args ...string) []byte {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run(%v): %v\nstderr: %s", args, err, stderr.String())
	}
	return stdout.Bytes()
}

// baseArgs is the small two-condition federated campaign every test
// builds on.
func baseArgs(extra ...string) []string {
	args := []string{
		"-envs", "Local Single-Replayer",
		"-conditions", "clean;drop=0.02,jitter=2e3",
		"-reps", "2", "-packets", "800", "-runs", "2", "-seed", "7",
	}
	return append(args, extra...)
}

// TestGoldenClean pins the clean federated document byte-for-byte.
func TestGoldenClean(t *testing.T) {
	checkGolden(t, "clean.txt", runCLI(t, baseArgs("-sites", "4")...))
}

// TestGoldenSiteDrop pins the degraded document after a mid-campaign
// site crash: surviving rows identical, lost rows annotated, campaign
// completed rather than aborted.
func TestGoldenSiteDrop(t *testing.T) {
	checkGolden(t, "sitedrop.txt",
		runCLI(t, baseArgs("-sites", "4", "-reps", "4", "-crash", "site0@2")...))
}

// TestStdoutIndependentOfSites is the federation identity at the CLI
// boundary: -sites 1/2/8 all render the bytes pinned by the -sites 4
// golden, across worker widths too.
func TestStdoutIndependentOfSites(t *testing.T) {
	ref := runCLI(t, baseArgs("-sites", "4")...)
	for _, args := range [][]string{
		baseArgs("-sites", "1"),
		baseArgs("-sites", "2", "-workers", "1"),
		baseArgs("-sites", "8", "-workers", "3"),
	} {
		if got := runCLI(t, args...); !bytes.Equal(got, ref) {
			t.Fatalf("stdout depends on site count (%v):\n--- got ---\n%s\n--- sites=4 ---\n%s", args, got, ref)
		}
	}
}

// TestGracefulLeaveMatchesClean: a leave hands custody off, so the
// document stays byte-identical to the undisturbed golden.
func TestGracefulLeaveMatchesClean(t *testing.T) {
	clean := runCLI(t, baseArgs("-sites", "4")...)
	left := runCLI(t, baseArgs("-sites", "4", "-leave", "site2@1")...)
	if !bytes.Equal(clean, left) {
		t.Fatalf("graceful leave changed the document:\n--- leave ---\n%s\n--- clean ---\n%s", left, clean)
	}
}

// TestBadFlagSpecs: malformed event and condition specs fail with
// nothing on stdout.
func TestBadFlagSpecs(t *testing.T) {
	for _, args := range [][]string{
		{"-crash", "site0"},          // missing @epoch
		{"-slow", "site0@1"},         // missing :k
		{"-heal", "site0@1"},         // heal takes @epoch only
		{"-conditions", "warp=0.5"},  // unknown fault field
		{"-envs", "No Such Testbed"}, // unknown environment
	} {
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err == nil {
			t.Errorf("run(%v) accepted a bad spec", args)
		} else if stdout.Len() != 0 {
			t.Errorf("run(%v) wrote to stdout on error: %q", args, stdout.String())
		} else if strings.TrimSpace(err.Error()) == "" {
			t.Errorf("run(%v): empty error", args)
		}
	}
}
