package choir_test

import (
	"fmt"

	"repro/choir"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

// trial builds a tiny synthetic capture: n packets, one every gap ns,
// with optional perturbations.
func trial(name string, n int, gap sim.Duration, mutate func(i int, t sim.Time) sim.Time) *choir.Trace {
	tr := trace.New(name, n)
	for i := 0; i < n; i++ {
		at := sim.Time(i) * gap
		if mutate != nil {
			at = mutate(i, at)
		}
		tr.Append(&packet.Packet{
			Tag:  packet.Tag{Replayer: 1, Seq: uint64(i)},
			Kind: packet.KindData, FrameLen: 1400,
		}, at)
	}
	return tr
}

// ExampleConsistency scores two identical trials: every variation
// metric is zero and κ is 1.
func ExampleConsistency() {
	a := trial("A", 1000, 284, nil)
	b := trial("B", 1000, 284, nil)
	m, err := choir.Consistency(a, b, choir.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("U=%.0f O=%.0f L=%.0f I=%.0f κ=%.0f\n", m.U, m.O, m.L, m.I, m.Kappa)
	// Output: U=0 O=0 L=0 I=0 κ=1
}

// ExampleConsistency_drops reproduces the paper's §3 worked example: a
// 10-packet trial where run B drops one packet gives U = 1/19.
func ExampleConsistency_drops() {
	a := trial("A", 10, 100, nil)
	b := trace.New("B", 9)
	for i := 0; i < 10; i++ {
		if i == 4 {
			continue // the dropped packet
		}
		b.Append(a.Packets[i], a.Times[i])
	}
	m, _ := choir.Consistency(a, b, choir.Options{})
	fmt.Printf("U = %.6f (1/19 = %.6f)\n", m.U, 1.0/19)
	// Output: U = 0.052632 (1/19 = 0.052632)
}

// ExampleKappa shows the compound score's extremes (Equation 5).
func ExampleKappa() {
	fmt.Printf("identical trials:    κ = %.1f\n", choir.Kappa(0, 0, 0, 0))
	fmt.Printf("maximally different: κ = %.1f\n", choir.Kappa(1, 1, 1, 1))
	// Output:
	// identical trials:    κ = 1.0
	// maximally different: κ = 0.0
}

// ExampleKappaScaled applies the §8.2 presence scaling: one drop in a
// million packets is invisible to linear κ but visible under ∜-scaling.
func ExampleKappaScaled() {
	u := 5e-7 // one drop in ~a million packets
	linear := choir.KappaScaled(u, 0, 0, 0, choir.KappaOptions{})
	quartic := choir.KappaScaled(u, 0, 0, 0, choir.KappaOptions{PresenceScaling: choir.ScaleQuartic})
	fmt.Printf("linear κ = %.4f, quartic κ = %.4f\n", linear, quartic)
	// Output: linear κ = 1.0000, quartic κ = 0.9867
}

// ExampleReorderBySpacing profiles where reordering happens: a single
// adjacent swap only affects spacing 1.
func ExampleReorderBySpacing() {
	a := trial("A", 6, 100, nil)
	b := trace.New("B", 6)
	order := []int{0, 2, 1, 3, 4, 5}
	for i, j := range order {
		b.Append(a.Packets[j], a.Times[i])
	}
	p := choir.ReorderBySpacing(a, b, 3)
	for d, prob := range p.Prob {
		fmt.Printf("spacing %d: P(reorder) = %.2f\n", d+1, prob)
	}
	// Output:
	// spacing 1: P(reorder) = 0.20
	// spacing 2: P(reorder) = 0.00
	// spacing 3: P(reorder) = 0.00
}
