// Package choir is the public API of this repository: a reproduction of
// "Network Replay and Consistency Across Testbeds" (SC Workshops '25).
//
// It exposes three capabilities:
//
//  1. The consistency metrics — U, O, L, I and the compound score κ
//     (paper §3) — over any two packet traces, including traces read
//     from pcap files (Consistency, ReadPcap).
//  2. The Choir replay system and its simulated testbed substrate:
//     build an Environment, run the paper's record-then-replay protocol
//     and get per-run metrics back (Environments, RunExperiment).
//  3. The paper's evaluation: regenerate any table or figure as a text
//     document (ReproduceFigure, FigureIDs).
//
// The heavy machinery lives in internal/ packages; this package is the
// stable surface.
package choir

import (
	"io"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/pcap"
	"repro/internal/sim"
	"repro/internal/stream"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// Trace is an ordered packet capture from one trial.
type Trace = trace.Trace

// Metrics holds the §3 consistency metrics between two trials: the four
// normalized variations U, O, L, I, the compound score Kappa, and the
// per-packet deltas behind the paper's histograms.
type Metrics = metrics.Result

// Options controls metric computation.
type Options = metrics.Options

// Consistency computes the paper's consistency metrics between trials a
// and b (Equations 1–5). The result is symmetric in a and b.
func Consistency(a, b *Trace, opts Options) (*Metrics, error) {
	return metrics.Compare(a, b, opts)
}

// Kappa combines four normalized variation metrics into the compound
// [0,1] consistency score of Equation 5 (1 = perfectly consistent).
func Kappa(u, o, l, i float64) float64 { return metrics.Kappa(u, o, l, i) }

// ReadPcap parses a libpcap capture (nanosecond or microsecond
// timestamps) into a Trace.
func ReadPcap(r io.Reader, name string) (*Trace, error) { return pcap.Read(r, name) }

// ReadPcapFile reads a capture file from disk.
func ReadPcapFile(path string) (*Trace, error) { return pcap.ReadFile(path) }

// WritePcap serializes a trace in nanosecond pcap format. snapLen <= 0
// captures full frames (required to preserve trailer tags on re-read).
func WritePcap(w io.Writer, tr *Trace, snapLen int) error { return pcap.Write(w, tr, snapLen) }

// WritePcapFile writes a capture file to disk.
func WritePcapFile(path string, tr *Trace, snapLen int) error {
	return pcap.WriteFile(path, tr, snapLen)
}

// WritePcapNG serializes a trace in pcapng format (nanosecond
// timestamps, single Ethernet interface).
func WritePcapNG(w io.Writer, tr *Trace, snapLen int) error { return pcap.WriteNG(w, tr, snapLen) }

// ReadCapture sniffs the stream's magic and reads either classic pcap
// or pcapng.
func ReadCapture(r io.Reader, name string) (*Trace, error) { return pcap.ReadAny(r, name) }

// ReadCaptureFile reads a capture file in either format.
func ReadCaptureFile(path string) (*Trace, error) { return pcap.ReadAnyFile(path) }

// Environment describes one experiment environment: hardware timing
// personalities, topology shape, noise, and clock discipline.
type Environment = testbed.Env

// Environments returns the paper's nine evaluation environments in
// Table 2 order.
func Environments() []Environment { return testbed.AllEnvironments() }

// Named environment constructors, re-exported for direct use.
var (
	LocalSingle             = testbed.LocalSingle
	LocalDual               = testbed.LocalDual
	FabricDedicated40       = testbed.FabricDedicated40
	FabricShared40          = testbed.FabricShared40
	FabricDedicated40Second = testbed.FabricDedicated40Second
	FabricDedicated80       = testbed.FabricDedicated80
	FabricShared80          = testbed.FabricShared80
	FabricDedicated80Noisy  = testbed.FabricDedicated80Noisy
	FabricShared40Noisy     = testbed.FabricShared40Noisy
)

// ExperimentConfig scales an experiment run.
type ExperimentConfig = experiments.TrialConfig

// ExperimentResult is the outcome of one environment's trial set:
// captured traces, per-run metrics against baseline run A, and their
// mean (one Table 2 row).
type ExperimentResult = experiments.RunResult

// RunExperiment executes the paper's protocol on one environment:
// record a traffic window through the Choir middlebox(es), replay it
// cfg.Runs times, and compare every replay against the first.
func RunExperiment(env Environment, cfg ExperimentConfig) (*ExperimentResult, error) {
	return experiments.Run(env, cfg)
}

// FigureIDs lists the reproducible paper artifacts (figures and tables)
// accepted by ReproduceFigure.
func FigureIDs() []string { return experiments.AllFigureIDs() }

// ReproduceFigure regenerates one paper table or figure and returns it
// rendered as text.
func ReproduceFigure(id string, cfg ExperimentConfig) (string, error) {
	doc, err := experiments.Figure(id, cfg)
	if err != nil {
		return "", err
	}
	return doc.String(), nil
}

// KappaOptions configures the §8.2 refinements of the compound score:
// per-component weights and non-linear presence scalings for U and O.
type KappaOptions = metrics.KappaOptions

// Scaling selects a non-linear component refinement.
type Scaling = metrics.Scaling

// Scaling choices for KappaScaled.
const (
	// ScaleLinear is the paper's published formulation.
	ScaleLinear = metrics.ScaleLinear
	// ScaleSqrt amplifies rare drops/reordering (√U, √O).
	ScaleSqrt = metrics.ScaleSqrt
	// ScaleQuartic amplifies them further (∜U, ∜O).
	ScaleQuartic = metrics.ScaleQuartic
)

// KappaScaled computes the refined compound score; with zero options it
// equals Kappa exactly.
func KappaScaled(u, o, l, i float64, opts KappaOptions) float64 {
	return metrics.KappaScaled(u, o, l, i, opts)
}

// ReorderProfile expresses reordering as a probability per packet
// spacing (Bellardo–Savage style, §9).
type ReorderProfile = metrics.ReorderProfile

// ReorderBySpacing profiles the reordering of trial B relative to trial
// A for spacings 1..maxSpacing.
func ReorderBySpacing(a, b *Trace, maxSpacing int) *ReorderProfile {
	return metrics.ReorderBySpacing(a, b, maxSpacing)
}

// ---- Streaming κ: comparison across time in bounded memory ----

// WindowMetrics is one time window's §3 metric vector.
type WindowMetrics = metrics.WindowResult

// ConsistencyWindowed slices both trials into consecutive windows on
// their trial-relative timelines and scores each window pair — the
// batch path. For traces too large to hold in memory, or for live runs,
// use StreamConsistency instead; the two agree window for window.
func ConsistencyWindowed(a, b *Trace, window sim.Duration, opts Options) ([]WindowMetrics, error) {
	return metrics.CompareWindowed(a, b, window, opts)
}

// StreamSource yields one trial's packets in arrival order. Implemented
// by PcapStream (files), TraceSource (in-memory traces) and LiveTap
// (running simulations).
type StreamSource = stream.Source

// StreamConfig parameterizes the streaming engine: window length, flow
// shard count, per-shard buffering and the backpressure lag bound.
type StreamConfig = stream.Config

// StreamSummary is the outcome of a streaming comparison: per-window
// vectors (unless discarded), the running aggregate, and memory
// high-water marks.
type StreamSummary = stream.Summary

// StreamAggregate is the combined whole-run vector of a streaming
// comparison.
type StreamAggregate = stream.Aggregate

// LiveTap is a channel-backed capture point: wire it into a simulated
// testbed as a receiver endpoint and stream κ while the trial runs.
type LiveTap = stream.Tap

// StreamConsistency compares two packet streams window by window in
// bounded memory — the scalable form of ConsistencyWindowed. Every
// window score is bit-identical to the batch path on the same input;
// memory is bounded by the window size and shard buffers, never by the
// stream length.
func StreamConsistency(a, b StreamSource, cfg StreamConfig) (*StreamSummary, error) {
	return stream.Run(a, b, cfg)
}

// TraceSource adapts an in-memory trace to a StreamSource.
func TraceSource(tr *Trace) StreamSource { return stream.NewTraceSource(tr) }

// NewLiveTap creates a live capture tap with the given buffer capacity;
// dataOnly applies the recorder's tag filter at the tap.
func NewLiveTap(buffer int, dataOnly bool) *LiveTap { return stream.NewTap(buffer, dataOnly) }

// PcapStream is an incremental pcap reader (one record per Next call);
// it implements StreamSource.
type PcapStream = pcap.Stream

// OpenPcapStream opens a capture file for incremental reading. Close the
// returned stream to release the file handle.
func OpenPcapStream(path string) (*PcapStream, error) { return pcap.OpenStream(path) }

// ErrTruncatedCapture marks a capture that ends mid-record (e.g. an
// in-progress file); the packets before the cut are still delivered.
var ErrTruncatedCapture = pcap.ErrTruncated
