package choir

import (
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// TestStreamConsistencyFromPcapFiles drives the public streaming path
// end to end: write two captures to disk, stream them back record at a
// time, and check the windows agree with the batch ConsistencyWindowed.
func TestStreamConsistencyFromPcapFiles(t *testing.T) {
	a := sampleTrace("A", 2_000, 284)
	b := sampleTrace("B", 2_000, 290) // slightly slower pacing → L/I > 0

	dir := t.TempDir()
	pa := filepath.Join(dir, "a.pcap")
	pb := filepath.Join(dir, "b.pcap")
	if err := WritePcapFile(pa, a, 0); err != nil {
		t.Fatal(err)
	}
	if err := WritePcapFile(pb, b, 0); err != nil {
		t.Fatal(err)
	}

	const window = 20 * sim.Microsecond
	want, err := ConsistencyWindowed(a, b, window, Options{})
	if err != nil {
		t.Fatal(err)
	}

	sa, err := OpenPcapStream(pa)
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	sb, err := OpenPcapStream(pb)
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	sum, err := StreamConsistency(sa, sb, StreamConfig{Window: window, DataOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Windows) != len(want) {
		t.Fatalf("streaming %d windows, batch %d", len(sum.Windows), len(want))
	}
	for i := range want {
		if sum.Windows[i].Result.Kappa != want[i].Result.Kappa {
			t.Fatalf("window %d: streaming κ %v != batch %v",
				i, sum.Windows[i].Result.Kappa, want[i].Result.Kappa)
		}
	}
	if sum.PacketsA != int64(a.Len()) || sum.PacketsB != int64(b.Len()) {
		t.Fatalf("streamed (%d,%d) packets, want (%d,%d)", sum.PacketsA, sum.PacketsB, a.Len(), b.Len())
	}
	if sum.Aggregate.Kappa <= 0 || sum.Aggregate.Kappa > 1 {
		t.Fatalf("aggregate κ out of range: %v", sum.Aggregate)
	}
}

// TestLiveTapExported sanity-checks the live tap through the facade.
func TestLiveTapExported(t *testing.T) {
	a := sampleTrace("A", 500, 284)
	tap := NewLiveTap(32, true)
	go func() {
		for i := 0; i < a.Len(); i++ {
			tap.Receive(a.Packets[i], a.Times[i])
		}
		tap.Close()
	}()
	sum, err := StreamConsistency(tap, TraceSource(a), StreamConfig{Window: 50 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Aggregate.Kappa != 1 {
		t.Fatalf("identical live stream scored %v", sum.Aggregate)
	}
}
