// Package simnet is the public surface for composing custom simulated
// topologies out of the same building blocks the paper reproduction
// uses: the discrete-event engine, NIC and switch models, clocks, the
// Choir middlebox, traffic generators and recorders.
//
// The nine paper environments (package repro/choir) cover the published
// evaluation; use this package when you want a different shape — more
// hops, asymmetric links, your own NIC personality:
//
//	eng := simnet.NewEngine(1)
//	nicProf := simnet.NICProfile{Name: "mine", LineRateBps: simnet.Gbps(100)}
//	genQ := simnet.NewNIC(eng, nicProf, "gen").NewQueue(0)
//	mbQ := simnet.NewNIC(eng, nicProf, "mb").NewQueue(0)
//	mb := simnet.NewMiddlebox(eng, simnet.MiddleboxConfig{
//	        ID: 1, TSC: simnet.NewTSC(2.5e9, 0, 0),
//	        Wall: simnet.NewSystemClock(0), Out: mbQ,
//	})
//	genQ.Connect(mb, 0)
//	rec := simnet.NewRecorder(eng, "A", nil, true)
//	mbQ.Connect(rec, 0)
//
// The declarations below are type aliases, so values interoperate freely
// with the environments and experiment harnesses in repro/choir.
package simnet

import (
	"repro/internal/clock"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/netsw"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
)

// --- simulation engine ---

// Engine is the deterministic discrete-event scheduler all components
// share.
type Engine = sim.Engine

// Time is simulated time in nanoseconds.
type Time = sim.Time

// Dist is a sampled duration distribution (see Constant, Uniform,
// Normal, LogNormal, Exponential, Mixture, Clamp).
type Dist = sim.Dist

// Distribution constructors.
type (
	// Constant always samples its value.
	Constant = sim.Constant
	// Uniform samples uniformly from [Lo, Hi].
	Uniform = sim.Uniform
	// Normal samples a Gaussian.
	Normal = sim.Normal
	// LogNormal samples exp(N(mu, sigma)) — heavy right tails.
	LogNormal = sim.LogNormal
	// Exponential samples an exponential with the given mean.
	Exponential = sim.Exponential
	// Mixture samples one of its components by weight.
	Mixture = sim.Mixture
	// Clamp truncates another distribution's samples.
	Clamp = sim.Clamp
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// NewEngine creates a deterministic engine from a seed.
func NewEngine(seed int64) *Engine { return sim.NewEngine(seed) }

// --- hardware ---

// NICProfile is a NIC timing personality.
type NICProfile = nic.Profile

// NIC is one physical adapter with one or more transmit queues (VFs).
type NIC = nic.NIC

// Queue is a transmit queue.
type Queue = nic.Queue

// Endpoint is anything terminating a wire.
type Endpoint = nic.Endpoint

// NewNIC creates an adapter.
func NewNIC(eng *Engine, prof NICProfile, label string) *NIC { return nic.New(eng, prof, label) }

// SwitchProfile is a switch timing personality; Tofino2 and Cisco5700
// reproduce the paper's fabrics.
type SwitchProfile = netsw.Profile

// Switch is a statically routed L2 element.
type Switch = netsw.Switch

// NewSwitch creates a switch.
func NewSwitch(eng *Engine, prof SwitchProfile, label string) *Switch {
	return netsw.New(eng, prof, label)
}

// Tofino2 is the local testbed's switch profile.
func Tofino2(rateBps int64) SwitchProfile { return netsw.Tofino2(rateBps) }

// Cisco5700 is the FABRIC site switch profile.
func Cisco5700(rateBps int64) SwitchProfile { return netsw.Cisco5700(rateBps) }

// Gbps converts gigabits/second to bits/second.
func Gbps(g float64) int64 { return packet.Gbps(g) }

// --- clocks ---

// TSC is a CPU cycle counter with calibration error.
type TSC = clock.TSC

// SystemClock is a settable wall clock.
type SystemClock = clock.SystemClock

// NewTSC creates a counter (reported Hz, calibration error in ppm,
// base value).
func NewTSC(reportedHz, errPPM float64, base uint64) *TSC {
	return clock.NewTSC(reportedHz, errPPM, base)
}

// NewSystemClock creates a wall clock with the given initial offset
// from true (grandmaster) time.
func NewSystemClock(offset Time) *SystemClock { return clock.NewSystemClock(offset) }

// --- Choir ---

// MiddleboxConfig assembles a Choir middlebox.
type MiddleboxConfig = core.Config

// Middlebox is one Choir instance: transparent forwarder, recorder,
// replayer.
type Middlebox = core.Middlebox

// Recorder is a capture endpoint producing traces.
type Recorder = core.Recorder

// Timestamper converts wire arrivals to reported capture timestamps.
type Timestamper = nic.Timestamper

// NewMiddlebox creates a Choir instance.
func NewMiddlebox(eng *Engine, cfg MiddleboxConfig) *Middlebox { return core.New(eng, cfg) }

// NewRecorder creates a capture endpoint; a nil timestamper reports
// exact wire times, dataOnly filters non-tagged frames.
func NewRecorder(eng *Engine, label string, ts Timestamper, dataOnly bool) *Recorder {
	return core.NewRecorder(eng, label, ts, dataOnly)
}

// --- control plane ---

// Command is a control-plane instruction.
type Command = control.Command

// Control commands.
type (
	// StartRecord begins recording at a wall-clock time.
	StartRecord = control.StartRecord
	// StopRecord ends recording.
	StopRecord = control.StopRecord
	// StartReplay replays the buffer aligned to a future wall time.
	StartReplay = control.StartReplay
	// PauseReplay suspends an in-progress replay.
	PauseReplay = control.PauseReplay
	// ResumeReplay resumes it.
	ResumeReplay = control.ResumeReplay
)

// Bus delivers commands out-of-band.
type Bus = control.Bus

// NewBus creates a control bus with the given delivery latency (nil =
// instantaneous).
func NewBus(eng *Engine, latency Dist) *Bus { return control.NewBus(eng, latency) }

// --- traffic ---

// CBRConfig configures a constant-bit-rate stream.
type CBRConfig = gen.CBRConfig

// StartCBR launches a Pktgen-style CBR stream into a queue.
func StartCBR(eng *Engine, q *Queue, cfg CBRConfig) *gen.Generator {
	return gen.StartCBR(eng, q, cfg)
}

// Flow identifies a 5-tuple for header synthesis.
type Flow = packet.FiveTuple

// IPForNode derives a stable simulated address.
func IPForNode(node uint16) packet.IPv4 { return packet.IPForNode(node) }
