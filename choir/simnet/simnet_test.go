package simnet_test

import (
	"testing"

	"repro/choir"
	"repro/choir/simnet"
)

// TestCustomTopologyThroughPublicSurface builds a two-hop chain using
// only the public simnet names and verifies a record/replay cycle: the
// composition story a downstream user follows.
func TestCustomTopologyThroughPublicSurface(t *testing.T) {
	eng := simnet.NewEngine(42)
	prof := simnet.NICProfile{Name: "user", LineRateBps: simnet.Gbps(100)}

	genQ := simnet.NewNIC(eng, prof, "gen").NewQueue(0)
	mbQ := simnet.NewNIC(eng, prof, "mb").NewQueue(0)

	mb := simnet.NewMiddlebox(eng, simnet.MiddleboxConfig{
		ID:   7,
		TSC:  simnet.NewTSC(2.5e9, 0, 0),
		Wall: simnet.NewSystemClock(0),
		Out:  mbQ,
	})
	genQ.Connect(mb, 0)

	rec := simnet.NewRecorder(eng, "A", nil, true)
	mbQ.Connect(rec, 0)

	bus := simnet.NewBus(eng, nil)
	bus.Send(mb, simnet.StartRecord{At: 0})
	simnet.StartCBR(eng, genQ, simnet.CBRConfig{
		RateBps:  simnet.Gbps(40),
		FrameLen: 1400,
		Count:    3000,
		Flow: simnet.Flow{
			Src: simnet.IPForNode(1), Dst: simnet.IPForNode(2), Proto: 17,
		},
	})
	eng.Run()
	if mb.Recorded() != 3000 {
		t.Fatalf("recorded %d", mb.Recorded())
	}

	// Replay twice and score with the public metrics API.
	run := func(name string) *choir.Trace {
		rec.StartTrial(name)
		bus.Send(mb, simnet.StartReplay{At: eng.Now() + 10*simnet.Millisecond})
		eng.Run()
		return rec.Trace().Normalize()
	}
	a, b := run("A"), run("B")
	m, err := choir.Consistency(a, b, choir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kappa != 1 {
		t.Fatalf("perfect custom rig scored κ=%v", m.Kappa)
	}
}

func TestUnitsAndProfiles(t *testing.T) {
	if simnet.Second != 1e9 || simnet.Gbps(100) != 100e9 {
		t.Fatal("unit helpers broken")
	}
	if simnet.Tofino2(simnet.Gbps(100)).Name != "Tofino2" {
		t.Fatal("profile re-export broken")
	}
	if simnet.Cisco5700(simnet.Gbps(100)).Name != "Cisco5700" {
		t.Fatal("profile re-export broken")
	}
}
