package choir

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/trace"
)

func sampleTrace(name string, n int, gap sim.Duration) *Trace {
	tr := trace.New(name, n)
	for i := 0; i < n; i++ {
		tr.Append(&packet.Packet{
			Tag:      packet.Tag{Replayer: 1, Seq: uint64(i)},
			Kind:     packet.KindData,
			FrameLen: 256,
			Flow:     packet.FiveTuple{Src: packet.IPForNode(1), Dst: packet.IPForNode(2), Proto: packet.ProtoUDP},
		}, sim.Time(i)*gap)
	}
	return tr
}

func TestConsistencyIdentical(t *testing.T) {
	a := sampleTrace("A", 100, 284)
	b := sampleTrace("B", 100, 284)
	m, err := Consistency(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kappa != 1 {
		t.Fatalf("κ = %v", m.Kappa)
	}
}

func TestKappaExported(t *testing.T) {
	if Kappa(0, 0, 0, 0) != 1 || Kappa(1, 1, 1, 1) != 0 {
		t.Fatal("Kappa formula wrong")
	}
}

func TestPcapRoundTripThroughFacade(t *testing.T) {
	tr := sampleTrace("A", 50, 1000)
	var buf bytes.Buffer
	if err := WritePcap(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPcap(&buf, "A")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 50 {
		t.Fatalf("round trip %d packets", got.Len())
	}
	m, err := Consistency(tr.Normalize(), got.Normalize(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kappa != 1 {
		t.Fatalf("pcap round trip not lossless: %v", m)
	}
}

func TestEnvironmentsExposed(t *testing.T) {
	if len(Environments()) != 9 {
		t.Fatalf("%d environments", len(Environments()))
	}
	if LocalSingle().Name == "" || FabricShared40Noisy().Name == "" {
		t.Fatal("constructors broken")
	}
}

func TestRunExperimentSmoke(t *testing.T) {
	res, err := RunExperiment(LocalSingle(), ExperimentConfig{Packets: 5000, Runs: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean.Kappa < 0.9 {
		t.Fatalf("local κ = %v", res.Mean.Kappa)
	}
}

func TestReproduceFigureSmoke(t *testing.T) {
	out, err := ReproduceFigure("fig4a", ExperimentConfig{Packets: 4000, Runs: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Figure 4a") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if _, err := ReproduceFigure("nope", ExperimentConfig{}); err == nil {
		t.Fatal("bad id accepted")
	}
	if len(FigureIDs()) == 0 {
		t.Fatal("no figure ids")
	}
}

func TestScalingExports(t *testing.T) {
	if KappaScaled(0, 0, 0, 0, KappaOptions{}) != 1 {
		t.Fatal("KappaScaled broken")
	}
	if KappaScaled(1e-6, 0, 0, 0, KappaOptions{PresenceScaling: ScaleQuartic}) >=
		KappaScaled(1e-6, 0, 0, 0, KappaOptions{PresenceScaling: ScaleLinear}) {
		t.Fatal("quartic scaling should penalize rare drops more")
	}
}

func TestReorderBySpacingExport(t *testing.T) {
	a := sampleTrace("A", 20, 100)
	b := sampleTrace("B", 20, 100)
	p := ReorderBySpacing(a, b, 4)
	if p.AnyReordering() {
		t.Fatal("identical traces reordered")
	}
	if p.MaxSpacing() != 4 {
		t.Fatalf("MaxSpacing = %d", p.MaxSpacing())
	}
}

func TestPcapNGThroughFacade(t *testing.T) {
	tr := sampleTrace("A", 30, 500)
	var buf bytes.Buffer
	if err := WritePcapNG(&buf, tr, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf, "A")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 30 {
		t.Fatalf("round trip %d packets", got.Len())
	}
	m, err := Consistency(tr.Normalize(), got.Normalize(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kappa != 1 {
		t.Fatalf("pcapng round trip lossy: %v", m)
	}
}
