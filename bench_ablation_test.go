// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// burst size (via the poll quantum), recorder timestamping discipline,
// switch fabric, replay-start scheduling slop, and the κ scaling
// refinements of §8.2. Each reports the consistency metrics the choice
// moves, so `go test -bench=Ablation` reads as a sensitivity study.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/netsw"
	"repro/internal/nic"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/testbed"
)

const ablationScale = 30_000

func ablate(b *testing.B, label string, env testbed.Env) (kappa, i, o float64) {
	b.Helper()
	res, err := experiments.Run(env, experiments.TrialConfig{Packets: ablationScale, Runs: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	m := res.Mean
	b.ReportMetric(m.Kappa, label+"/κ")
	b.ReportMetric(m.I*1e3, label+"/I×1e3")
	return m.Kappa, m.I, m.O
}

// BenchmarkAblationPollInterval varies the middlebox poll quantum — and
// with it the recorded burst size (§5: larger bursts buy line rate with
// fewer resources). Smaller bursts expose more burst-head pull jitter.
func BenchmarkAblationPollInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, quantum := range []sim.Duration{4 * sim.Microsecond, 15 * sim.Microsecond, 60 * sim.Microsecond} {
			env := testbed.LocalSingle()
			env.PollInterval = quantum
			ablate(b, fmt.Sprintf("poll%dus", quantum/sim.Microsecond), env)
		}
	}
}

// BenchmarkAblationTimestamper swaps the recorder's timestamping
// discipline (§8.1: E810 real-time stamps vs ConnectX sampled clock).
// The paper found this does not explain the local-vs-FABRIC gap; the
// ablation confirms the effect is second-order.
func BenchmarkAblationTimestamper(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e810 := testbed.LocalSingle()
		k1, _, _ := ablate(b, "e810", e810)

		cx := testbed.LocalSingle()
		cx.RecorderTimestamper = func() nic.Timestamper {
			return nic.ConnectXTimestamper{PeriodNs: 1, ConversionJitter: sim.Normal{Mu: 0, Sigma: 4}}
		}
		k2, _, _ := ablate(b, "connectx", cx)
		b.ReportMetric((k1-k2)*1e3, "Δκ×1e3")
	}
}

// BenchmarkAblationSwitchFabric swaps the Tofino2 for the Cisco 5700
// profile on the otherwise-local testbed (§8.1 lists the switch as a
// candidate source of FABRIC's extra variance).
func BenchmarkAblationSwitchFabric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tofino := testbed.LocalSingle()
		ablate(b, "tofino2", tofino)

		cisco := testbed.LocalSingle()
		cisco.Switch = netsw.Cisco5700(packet.Gbps(100))
		ablate(b, "cisco5700", cisco)
	}
}

// BenchmarkAblationReplayStartSlop varies the dual-replayer start
// scheduling slop, the knob behind §6.2's reordering: O and L scale
// with it while single-stream I barely moves.
func BenchmarkAblationReplayStartSlop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, slop := range []sim.Duration{sim.Millisecond, 12 * sim.Millisecond, 40 * sim.Millisecond} {
			env := testbed.LocalDual()
			env.ReplayStartJitter = sim.Uniform{Lo: 0, Hi: slop}
			res, err := experiments.Run(env, experiments.TrialConfig{Packets: ablationScale, Runs: 2, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			label := fmt.Sprintf("slop%dms", slop/sim.Millisecond)
			b.ReportMetric(res.Mean.O*1e3, label+"/O×1e3")
			b.ReportMetric(res.Mean.Kappa, label+"/κ")
		}
	}
}

// BenchmarkAblationKappaScaling applies the §8.2 future-work scalings
// to the noisy-shared run, where rare drops exist: linear κ barely sees
// them, sqrt/quartic make any-drop presence visible.
func BenchmarkAblationKappaScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Rare drops need the full-length window to occur; run this
		// ablation at a larger scale than the others.
		res, err := experiments.Run(testbed.FabricShared40Noisy(),
			experiments.TrialConfig{Packets: 120_000, Runs: 2, Seed: 2})
		if err != nil {
			b.Fatal(err)
		}
		r := res.Results[0]
		if r.U == 0 {
			b.Fatal("noisy run produced no drops; scaling ablation is vacuous")
		}
		b.ReportMetric(metrics.KappaScaledResult(r, metrics.KappaOptions{}), "linear/κ")
		b.ReportMetric(metrics.KappaScaledResult(r, metrics.KappaOptions{PresenceScaling: metrics.ScaleSqrt}), "sqrt/κ")
		b.ReportMetric(metrics.KappaScaledResult(r, metrics.KappaOptions{PresenceScaling: metrics.ScaleQuartic}), "quartic/κ")
	}
}

// BenchmarkAblationBurstGrouping compares burst-granular VF arbitration
// with packet-granular interleaving on the shared NIC — the mechanism
// switch behind Figure 10.
func BenchmarkAblationBurstGrouping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		burstGranular := testbed.FabricShared40Noisy()
		burstGranular.ReplayerNIC.PacketInterleave = false
		ablate(b, "burstRR", burstGranular)

		pktGranular := testbed.FabricShared40Noisy()
		ablate(b, "packetDRR", pktGranular)
	}
}

// BenchmarkRateSweepSharedNIC extends the paper's two-point rate probe
// into a curve: consistency of the shared-NIC environment from 10 to
// 100 Gbps. The paper's observation — higher rates average the VF
// jitter and *improve* I up to a point — shows up as the κ trend.
func BenchmarkRateSweepSharedNIC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RateSweep(testbed.FabricShared40(),
			[]float64{10, 40, 80}, experiments.TrialConfig{Packets: 20_000, Runs: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range pts {
			b.ReportMetric(p.Mean.Kappa, fmt.Sprintf("%gG/κ", p.RateGbps))
		}
	}
}

// BenchmarkAblationMemoryBudget exercises §5's RAM constraint: the
// replay buffer is the only consumer of memory, so a pool smaller than
// the recording starves RX and truncates the replay, while a
// sufficient pool ("the program can run with a minimum of 1 GB")
// behaves identically to unbounded memory.
func BenchmarkAblationMemoryBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, mib := range []int{16, 64, 0} { // 16 MiB ≈ 8k mbufs < 30k packets
			env := testbed.LocalSingle()
			env.MemPoolMiB = mib
			res, err := experiments.Run(env, experiments.TrialConfig{Packets: ablationScale, Runs: 2, Seed: 3})
			if err != nil {
				b.Fatal(err)
			}
			label := fmt.Sprintf("pool%dMiB", mib)
			if mib == 0 {
				label = "unbounded"
			}
			b.ReportMetric(float64(res.Recorded), label+"/recorded")
			b.ReportMetric(res.Mean.Kappa, label+"/κ")
		}
	}
}
